package schema

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewScheme(t *testing.T) {
	s, err := NewScheme("R", "A", "B", "C")
	if err != nil {
		t.Fatalf("NewScheme: %v", err)
	}
	if s.Name() != "R" {
		t.Errorf("Name = %q, want R", s.Name())
	}
	if s.Width() != 3 {
		t.Errorf("Width = %d, want 3", s.Width())
	}
	if got := s.String(); got != "R(A,B,C)" {
		t.Errorf("String = %q", got)
	}
	if p, ok := s.Pos("B"); !ok || p != 1 {
		t.Errorf("Pos(B) = %d,%v", p, ok)
	}
	if _, ok := s.Pos("Z"); ok {
		t.Errorf("Pos(Z) should not exist")
	}
	if !s.Has("C") || s.Has("D") {
		t.Errorf("Has misbehaves")
	}
	if !s.HasAll([]Attribute{"A", "C"}) {
		t.Errorf("HasAll(A,C) = false")
	}
	if s.HasAll([]Attribute{"A", "Z"}) {
		t.Errorf("HasAll(A,Z) = true")
	}
}

func TestNewSchemeErrors(t *testing.T) {
	cases := []struct {
		name  string
		attrs []Attribute
	}{
		{"", []Attribute{"A"}},
		{"R", nil},
		{"R", []Attribute{"A", "A"}},
		{"R", []Attribute{""}},
	}
	for _, c := range cases {
		if _, err := NewScheme(c.name, c.attrs...); err == nil {
			t.Errorf("NewScheme(%q, %v): expected error", c.name, c.attrs)
		}
	}
}

func TestMustSchemePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("MustScheme did not panic on duplicate attribute")
		}
	}()
	MustScheme("R", "A", "A")
}

func TestDatabase(t *testing.T) {
	r := MustScheme("R", "A", "B")
	s := MustScheme("S", "C")
	d, err := NewDatabase(r, s)
	if err != nil {
		t.Fatalf("NewDatabase: %v", err)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d", d.Len())
	}
	if !reflect.DeepEqual(d.Names(), []string{"R", "S"}) {
		t.Errorf("Names = %v", d.Names())
	}
	got, ok := d.Scheme("S")
	if !ok || got != s {
		t.Errorf("Scheme(S) = %v, %v", got, ok)
	}
	if _, ok := d.Scheme("T"); ok {
		t.Errorf("Scheme(T) should not exist")
	}
	if err := d.Add(MustScheme("R", "X")); err == nil {
		t.Errorf("Add duplicate name: expected error")
	}
	if err := d.Add(nil); err == nil {
		t.Errorf("Add(nil): expected error")
	}
	want := "R(A,B)\nS(C)"
	if d.String() != want {
		t.Errorf("String = %q, want %q", d.String(), want)
	}
}

func TestDistinct(t *testing.T) {
	if !Distinct([]Attribute{"A", "B", "C"}) {
		t.Errorf("Distinct(A,B,C) = false")
	}
	if Distinct([]Attribute{"A", "B", "A"}) {
		t.Errorf("Distinct(A,B,A) = true")
	}
	if !Distinct(nil) {
		t.Errorf("Distinct(nil) = false")
	}
}

func TestEqualSeqAndSubset(t *testing.T) {
	x := []Attribute{"A", "B"}
	y := []Attribute{"A", "B"}
	z := []Attribute{"B", "A"}
	if !EqualSeq(x, y) || EqualSeq(x, z) || EqualSeq(x, x[:1]) {
		t.Errorf("EqualSeq misbehaves")
	}
	if !SubsetOf(x, z) {
		t.Errorf("SubsetOf order should not matter")
	}
	if SubsetOf([]Attribute{"C"}, x) {
		t.Errorf("SubsetOf(C, AB) = true")
	}
	if !SubsetOf(nil, nil) {
		t.Errorf("SubsetOf(nil, nil) = false")
	}
}

func TestSortedSet(t *testing.T) {
	got := SortedSet([]Attribute{"C", "A", "C", "B"})
	want := []Attribute{"A", "B", "C"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SortedSet = %v, want %v", got, want)
	}
}

func TestJoinAttrsAndConcat(t *testing.T) {
	if got := JoinAttrs([]Attribute{"A", "B"}); got != "A,B" {
		t.Errorf("JoinAttrs = %q", got)
	}
	if got := JoinAttrs(nil); got != "" {
		t.Errorf("JoinAttrs(nil) = %q", got)
	}
	got := Concat([]Attribute{"A"}, []Attribute{"B", "C"})
	if !reflect.DeepEqual(got, []Attribute{"A", "B", "C"}) {
		t.Errorf("Concat = %v", got)
	}
}

// Property: SortedSet is idempotent and its output is always Distinct.
func TestSortedSetProperties(t *testing.T) {
	gen := func(r *rand.Rand) []Attribute {
		n := r.Intn(8)
		out := make([]Attribute, n)
		for i := range out {
			out[i] = Attribute('A' + rune(r.Intn(4)))
		}
		return out
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		seq := gen(r)
		once := SortedSet(seq)
		twice := SortedSet(once)
		if !reflect.DeepEqual(once, twice) {
			return false
		}
		if !Distinct(once) {
			return false
		}
		// Every element of the input appears in the output and vice versa.
		return SubsetOf(seq, once) && SubsetOf(once, seq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: EqualSeq is reflexive and symmetric.
func TestEqualSeqProperties(t *testing.T) {
	f := func(xs, ys []byte) bool {
		toAttrs := func(b []byte) []Attribute {
			out := make([]Attribute, len(b))
			for i, c := range b {
				out[i] = Attribute('A' + rune(c%3))
			}
			return out
		}
		x, y := toAttrs(xs), toAttrs(ys)
		if !EqualSeq(x, x) {
			return false
		}
		return EqualSeq(x, y) == EqualSeq(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
