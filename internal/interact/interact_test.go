package interact

import (
	"testing"

	"indfd/internal/counterex"
	"indfd/internal/deps"
	"indfd/internal/schema"
)

func TestProp41Derivation(t *testing.T) {
	db := schema.MustDatabase(
		schema.MustScheme("R", "X", "Y"),
		schema.MustScheme("S", "T", "U"),
	)
	sigma := []deps.Dependency{
		deps.NewIND("R", deps.Attrs("X", "Y"), "S", deps.Attrs("T", "U")),
		deps.NewFD("S", deps.Attrs("T"), deps.Attrs("U")),
	}
	goal := deps.NewFD("R", deps.Attrs("X"), deps.Attrs("Y"))
	ok, err := Derives(db, sigma, nil, goal)
	if err != nil {
		t.Fatalf("Derives: %v", err)
	}
	if !ok {
		t.Errorf("Proposition 4.1 consequence not derived")
	}
	// Without the FD the rule must not fire.
	ok, _ = Derives(db, sigma[:1], nil, goal)
	if ok {
		t.Errorf("unsound derivation without the FD")
	}
}

func TestProp42Derivation(t *testing.T) {
	db := schema.MustDatabase(
		schema.MustScheme("R", "X", "Y", "Z"),
		schema.MustScheme("S", "T", "U", "V"),
	)
	sigma := []deps.Dependency{
		deps.NewIND("R", deps.Attrs("X", "Y"), "S", deps.Attrs("T", "U")),
		deps.NewIND("R", deps.Attrs("X", "Z"), "S", deps.Attrs("T", "V")),
		deps.NewFD("S", deps.Attrs("T"), deps.Attrs("U")),
	}
	goal := deps.NewIND("R", deps.Attrs("X", "Y", "Z"), "S", deps.Attrs("T", "U", "V"))
	ok, err := Derives(db, sigma, nil, goal)
	if err != nil {
		t.Fatalf("Derives: %v", err)
	}
	if !ok {
		t.Errorf("Proposition 4.2 consequence not derived")
	}
}

func TestProp43Derivation(t *testing.T) {
	db := schema.MustDatabase(
		schema.MustScheme("R", "X", "Y", "Z"),
		schema.MustScheme("S", "T", "U"),
	)
	sigma := []deps.Dependency{
		deps.NewIND("R", deps.Attrs("X", "Y"), "S", deps.Attrs("T", "U")),
		deps.NewIND("R", deps.Attrs("X", "Z"), "S", deps.Attrs("T", "U")),
		deps.NewFD("S", deps.Attrs("T"), deps.Attrs("U")),
	}
	goal := deps.NewRD("R", deps.Attrs("Y"), deps.Attrs("Z"))
	ok, err := Derives(db, sigma, nil, goal)
	if err != nil {
		t.Fatalf("Derives: %v", err)
	}
	if !ok {
		t.Errorf("Proposition 4.3 consequence not derived")
	}
}

func TestClassInternalClosures(t *testing.T) {
	db := schema.MustDatabase(
		schema.MustScheme("R", "A", "B", "C"),
		schema.MustScheme("S", "D", "E"),
	)
	sigma := []deps.Dependency{
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
		deps.NewFD("R", deps.Attrs("B"), deps.Attrs("C")),
		deps.NewIND("R", deps.Attrs("A"), "S", deps.Attrs("D")),
		deps.NewIND("S", deps.Attrs("D"), "S", deps.Attrs("E")),
	}
	for _, goal := range []deps.Dependency{
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("C")),
		deps.NewIND("R", deps.Attrs("A"), "S", deps.Attrs("E")),
	} {
		ok, err := Derives(db, sigma, nil, goal)
		if err != nil {
			t.Fatalf("Derives(%v): %v", goal, err)
		}
		if !ok {
			t.Errorf("%v not derived by class-internal closure", goal)
		}
	}
}

// The engine is honest about its incompleteness: it cannot derive the
// Section 6 goal (which needs a (k+1)-ary counting rule for finite
// implication — indeed σ_k is not even unrestrictedly implied) nor the
// Section 7 goal F: A -> C (which IS unrestrictedly implied, by
// Lemma 7.2, but whose derivation needs unbounded arity).
func TestIncompletenessOnPaperWitnesses(t *testing.T) {
	s6, err := counterex.NewSection6(2)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := Derives(s6.DB, s6.Sigma, nil, s6.Goal)
	if err != nil {
		t.Fatalf("Derives: %v", err)
	}
	if ok {
		t.Errorf("engine derived σ_k, which is not unrestrictedly implied — unsound")
	}

	s7, err := counterex.NewSection7(2)
	if err != nil {
		t.Fatal(err)
	}
	ok, err = Derives(s7.DB, s7.Sigma, nil, s7.Goal)
	if err != nil {
		t.Fatalf("Derives: %v", err)
	}
	if ok {
		t.Errorf("bounded-arity engine derived F: A -> C; Theorem 7.1 says it cannot")
	}
	// Yet the φ members ARE derivable (Lemma 7.3's Proposition 4.1
	// argument), except the goal itself.
	for _, f := range s7.Phi {
		if f.Key() == deps.Dependency(s7.Goal).Key() {
			continue
		}
		ok, err := Derives(s7.DB, s7.Sigma, nil, f)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("φ member %v not derived (Lemma 7.3 path broken)", f)
		}
	}
}

// Soundness: everything the engine derives on the Section 7 instance is a
// genuine consequence of Σ (member of φ⁺ ∪ λ⁺ ∪ ω by Lemmas 7.4–7.6).
func TestSoundnessAgainstSection7(t *testing.T) {
	s7, err := counterex.NewSection7(2)
	if err != nil {
		t.Fatal(err)
	}
	universe := s7.Universe()
	c, err := Closure(s7.DB, s7.Sigma, universe)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range c.All() {
		var member bool
		switch dd := d.(type) {
		case deps.FD:
			member = s7.InPhiPlus(dd)
		case deps.IND:
			member, err = s7.InLambdaPlus(dd)
			if err != nil {
				t.Fatal(err)
			}
		case deps.RD:
			member = dd.Trivial()
		}
		if !member && d.Key() != deps.Dependency(s7.Goal).Key() {
			t.Errorf("engine derived %v, which is not a consequence of Σ", d)
		}
	}
}

func TestRDRules(t *testing.T) {
	db := schema.MustDatabase(schema.MustScheme("R", "A", "B", "C"))
	sigma := []deps.Dependency{
		deps.NewRD("R", deps.Attrs("A"), deps.Attrs("B")),
		deps.NewRD("R", deps.Attrs("B"), deps.Attrs("C")),
	}
	goals := []deps.Dependency{
		deps.NewRD("R", deps.Attrs("A"), deps.Attrs("C")),       // RD transitivity
		deps.NewRD("R", deps.Attrs("C"), deps.Attrs("A")),       // RD symmetry
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),       // RD -> FD
		deps.NewFD("R", deps.Attrs("C"), deps.Attrs("A")),       // via closure
		deps.NewIND("R", deps.Attrs("A"), "R", deps.Attrs("C")), // RD -> IND
	}
	for _, g := range goals {
		ok, err := Derives(db, sigma, nil, g)
		if err != nil {
			t.Fatalf("Derives(%v): %v", g, err)
		}
		if !ok {
			t.Errorf("%v not derived from RDs", g)
		}
	}
	// A disconnected pair stays disconnected.
	ok, _ := Derives(db, sigma[:1], nil, deps.NewRD("R", deps.Attrs("A"), deps.Attrs("C")))
	if ok {
		t.Errorf("R[A == C] should not follow from R[A == B] alone")
	}
}
