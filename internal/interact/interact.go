// Package interact implements a sound, bounded-arity inference engine for
// FDs, INDs and RDs together: Armstrong's axioms, IND1–IND3, and the
// interaction rules of Propositions 4.1, 4.2 and 4.3. Every rule has at
// most three antecedents.
//
// The paper's central negative result (Theorems 6.1 and 7.1) is that NO
// such engine — indeed no k-ary axiomatization for any k — can be
// complete for FDs and INDs taken together. This package exists to make
// that theorem tangible: its Closure derives all the Proposition 4.x
// consequences, yet provably misses the Section 6 goal σ_k (which needs
// the (k+1)-antecedent counting rule) and the Section 7 goal F: A -> C.
package interact

import (
	"indfd/internal/deps"
	"indfd/internal/fd"
	"indfd/internal/ind"
	"indfd/internal/schema"
)

// Closure computes the set of sentences in the universe derivable from
// sigma by the bounded-arity rules:
//
//   - Armstrong closure within the derived FDs (complete for FDs alone);
//   - IND1–IND3 closure within the derived INDs (complete for INDs alone);
//   - Proposition 4.1: R[XY] ⊆ S[TU] and S: T -> U give R: X -> Y;
//   - Proposition 4.2: R[XY] ⊆ S[TU], R[XZ] ⊆ S[TV] and S: T -> U give
//     R[XYZ] ⊆ S[TUV];
//   - Proposition 4.3: R[XY] ⊆ S[TU], R[XZ] ⊆ S[TU] and S: T -> U give
//     the RD R[Y = Z];
//
// iterated to a fixpoint. Sound for unrestricted implication (hence also
// finite), but not complete — by Theorem 7.1 nothing of bounded arity is.
func Closure(db *schema.Database, sigma []deps.Dependency, universe []deps.Dependency) (*deps.Set, error) {
	derived := deps.NewSet(sigma...)
	for changed := true; changed; {
		changed = false

		// A derived RD R[A = B] acts as the FDs A -> B, B -> A and the
		// INDs R[A] ⊆ R[B], R[B] ⊆ R[A] (Section 4 observes RDs are
		// special generalized INDs); expose those to the class closures.
		fds := derived.FDs()
		inds := derived.INDs()
		eq := rdEquivalence(derived.RDs())
		for rel, classes := range eq {
			for a := range classes.parent {
				b := classes.find(a)
				if a != b {
					fds = append(fds,
						deps.NewFD(rel, []schema.Attribute{a}, []schema.Attribute{b}),
						deps.NewFD(rel, []schema.Attribute{b}, []schema.Attribute{a}),
					)
					inds = append(inds,
						deps.NewIND(rel, []schema.Attribute{a}, rel, []schema.Attribute{b}),
						deps.NewIND(rel, []schema.Attribute{b}, rel, []schema.Attribute{a}),
					)
				}
			}
		}

		// Class-internal closures, restricted to the universe.
		for _, tau := range universe {
			if derived.Contains(tau) {
				continue
			}
			switch t := tau.(type) {
			case deps.FD:
				if fd.Implies(fds, t) {
					derived.Add(t)
					changed = true
				}
			case deps.IND:
				ok, err := ind.Implies(db, inds, t)
				if err != nil {
					return nil, err
				}
				if ok {
					derived.Add(t)
					changed = true
				}
			case deps.RD:
				if t.Trivial() || rdDerivable(eq, t) {
					derived.Add(t)
					changed = true
				}
			}
		}

		// Interaction rules. INDs are re-read so this round's additions
		// feed the next round.
		for _, d := range derived.INDs() {
			if applyProp41(derived, d) {
				changed = true
			}
		}
		indList := derived.INDs()
		for i := range indList {
			for j := range indList {
				if i == j {
					continue
				}
				if applyProp42And43(db, derived, indList[i], indList[j]) {
					changed = true
				}
			}
		}
	}
	// Intersect with the universe (interaction rules may derive sentences
	// outside it; keep them out of the reported closure but note they
	// were available as intermediates — we therefore iterate once more
	// over the universe before trimming).
	out := deps.NewSet()
	inUniverse := deps.NewSet(universe...)
	for _, d := range derived.All() {
		if inUniverse.Contains(d) {
			out.Add(d)
		}
	}
	return out, nil
}

// Derives reports whether goal is in the closure of sigma within the
// universe extended with the goal itself.
func Derives(db *schema.Database, sigma []deps.Dependency, universe []deps.Dependency, goal deps.Dependency) (bool, error) {
	ext := append(append([]deps.Dependency(nil), universe...), goal)
	c, err := Closure(db, sigma, ext)
	if err != nil {
		return false, err
	}
	return c.Contains(goal), nil
}

// applyProp41 adds, for every split of d's column pairs into X-pairs and
// Y-pairs such that the FD T -> U over the right side is derived, the FD
// X -> Y over the left side.
func applyProp41(derived *deps.Set, d deps.IND) bool {
	w := d.Width()
	changed := false
	fds := derived.FDs()
	for mask := 0; mask < 1<<w; mask++ {
		// Pairs in mask form X/T; the rest form Y/U. Y must be nonempty.
		if mask == (1<<w)-1 {
			continue
		}
		var x, y, t, u []schema.Attribute
		for i := 0; i < w; i++ {
			if mask&(1<<i) != 0 {
				x = append(x, d.X[i])
				t = append(t, d.Y[i])
			} else {
				y = append(y, d.X[i])
				u = append(u, d.Y[i])
			}
		}
		if !fd.Implies(fds, deps.NewFD(d.RRel, t, u)) {
			continue
		}
		f := deps.NewFD(d.LRel, x, y)
		if !derived.Contains(f) {
			derived.Add(f)
			changed = true
		}
	}
	return changed
}

// applyProp42And43 matches the two INDs d1 = R[XY] ⊆ S[TU] and
// d2 = R[XZ] ⊆ S[TV] on their shared column pairs X/T and, when the FD
// T -> U is derived, adds the combined IND R[XYZ] ⊆ S[TUV]
// (Proposition 4.2) or, in the degenerate case U = V (matching pairs),
// the RD R[Y = Z] (Proposition 4.3).
func applyProp42And43(db *schema.Database, derived *deps.Set, d1, d2 deps.IND) bool {
	if d1.LRel != d2.LRel || d1.RRel != d2.RRel {
		return false
	}
	changed := false
	fds := derived.FDs()
	// Shared pairs: column pairs present in both INDs.
	type pair struct{ x, y schema.Attribute }
	in2 := map[pair]bool{}
	for i := range d2.X {
		in2[pair{d2.X[i], d2.Y[i]}] = true
	}
	var x, t []schema.Attribute
	var y, u []schema.Attribute // d1-only pairs
	for i := range d1.X {
		p := pair{d1.X[i], d1.Y[i]}
		if in2[p] {
			x = append(x, p.x)
			t = append(t, p.y)
		} else {
			y = append(y, p.x)
			u = append(u, p.y)
		}
	}
	shared := map[pair]bool{}
	for i := range x {
		shared[pair{x[i], t[i]}] = true
	}
	var z, v []schema.Attribute // d2-only pairs
	for i := range d2.X {
		p := pair{d2.X[i], d2.Y[i]}
		if !shared[p] {
			z = append(z, p.x)
			v = append(v, p.y)
		}
	}
	if len(y) == 0 || len(z) == 0 {
		return false
	}
	if !fd.Implies(fds, deps.NewFD(d1.RRel, t, u)) {
		return false
	}
	// Proposition 4.3: if the non-shared pairs of d2 target the same
	// right-hand columns as d1's (U = V as sequences after alignment),
	// the left-hand columns must repeat.
	if schema.EqualSeq(u, v) && !schema.EqualSeq(y, z) {
		rd := deps.NewRD(d1.LRel, y, z)
		if !derived.Contains(rd) {
			derived.Add(rd)
			changed = true
		}
	}
	// Proposition 4.2: combined IND, when the attribute sequences remain
	// distinct.
	lhs := schema.Concat(x, y, z)
	rhs := schema.Concat(t, u, v)
	if schema.Distinct(lhs) && schema.Distinct(rhs) {
		comb := deps.NewIND(d1.LRel, lhs, d1.RRel, rhs)
		if err := comb.Validate(db); err == nil && !derived.Contains(comb) {
			derived.Add(comb)
			changed = true
		}
	}
	return changed
}

// attrUF is a union-find over attribute names of one relation.
type attrUF struct {
	parent map[schema.Attribute]schema.Attribute
}

func (u *attrUF) find(a schema.Attribute) schema.Attribute {
	p, ok := u.parent[a]
	if !ok || p == a {
		if !ok {
			u.parent[a] = a
		}
		return a
	}
	root := u.find(p)
	u.parent[a] = root
	return root
}

func (u *attrUF) union(a, b schema.Attribute) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		// Keep the lexicographically smaller attribute as the root so the
		// representative choice is deterministic.
		if rb < ra {
			ra, rb = rb, ra
		}
		u.parent[rb] = ra
	}
}

// rdEquivalence builds, per relation, the attribute equivalence induced
// by the derived RDs (RD symmetry and transitivity come for free).
func rdEquivalence(rds []deps.RD) map[string]*attrUF {
	out := map[string]*attrUF{}
	for _, r := range rds {
		uf := out[r.Rel]
		if uf == nil {
			uf = &attrUF{parent: map[schema.Attribute]schema.Attribute{}}
			out[r.Rel] = uf
		}
		for i := range r.X {
			uf.union(r.X[i], r.Y[i])
		}
	}
	return out
}

// rdDerivable reports whether the RD follows from the equivalence.
func rdDerivable(eq map[string]*attrUF, r deps.RD) bool {
	uf := eq[r.Rel]
	for i := range r.X {
		if r.X[i] == r.Y[i] {
			continue
		}
		if uf == nil || uf.find(r.X[i]) != uf.find(r.Y[i]) {
			return false
		}
	}
	return true
}
