// Package counterex implements every counterexample construction in the
// paper: the infinite relations of Figs 4.1 and 4.2 (Theorem 4.4), the
// Section 6 family Σ_k/σ_k with its Armstrong databases (Fig 6.1), and the
// Section 7 scheme with Σ, Γ, φ, λ and the databases of Figs 7.1–7.5,
// together with mechanized verification of the lemmas that use them.
package counterex

import (
	"fmt"

	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/schema"
)

// LazyRelation is an infinite relation presented by a tuple generator:
// the relation is {Tuple(0), Tuple(1), ...}. It models the genuinely
// infinite counterexamples of Theorem 4.4, which cannot be materialized;
// Window materializes finite prefixes for empirical checks, and the
// specific constructions below carry symbolic arguments for their claimed
// properties.
type LazyRelation struct {
	Scheme *schema.Scheme
	Tuple  func(i int) data.Tuple
}

// Window materializes the first n tuples as a concrete database over a
// scheme containing just this relation.
func (l *LazyRelation) Window(n int) *data.Database {
	ds := schema.MustDatabase(l.Scheme)
	db := data.NewDatabase(ds)
	for i := 0; i < n; i++ {
		db.MustInsert(l.Scheme.Name(), l.Tuple(i))
	}
	return db
}

// Theorem44Instance packages one half of Theorem 4.4: the dependency set
// Σ = {R: A -> B, R[A] ⊆ R[B]}, a goal σ that Σ implies finitely but not
// unrestrictedly, and the infinite witness relation that obeys Σ while
// violating σ.
type Theorem44Instance struct {
	DB      *schema.Database
	Sigma   []deps.Dependency
	Goal    deps.Dependency
	Witness *LazyRelation
}

func theorem44Scheme() (*schema.Database, *schema.Scheme) {
	s := schema.MustScheme("R", "A", "B")
	return schema.MustDatabase(s), s
}

// Fig41 returns the Theorem 4.4(a) instance. The witness is the relation
// of Fig 4.1, {(i+1, i) : i ≥ 0}: it obeys R: A -> B (the A entries are
// pairwise distinct), obeys R[A] ⊆ R[B] (the A entry i+1 of tuple i is the
// B entry of tuple i+1), and violates σ = R[B] ⊆ R[A] (the B entry 0 of
// tuple 0 is no A entry, since all A entries are ≥ 1).
func Fig41() Theorem44Instance {
	ds, s := theorem44Scheme()
	return Theorem44Instance{
		DB: ds,
		Sigma: []deps.Dependency{
			deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
			deps.NewIND("R", deps.Attrs("A"), "R", deps.Attrs("B")),
		},
		Goal: deps.NewIND("R", deps.Attrs("B"), "R", deps.Attrs("A")),
		Witness: &LazyRelation{
			Scheme: s,
			Tuple:  func(i int) data.Tuple { return data.Tuple{data.Int(i + 1), data.Int(i)} },
		},
	}
}

// Fig42 returns the Theorem 4.4(b) instance. The witness is the relation
// of Fig 4.2, {(1,1)} ∪ {(i+1, i) : i ≥ 1}: it obeys Σ and violates
// σ = R: B -> A (the B entry 1 occurs with A entries 1 and 2).
func Fig42() Theorem44Instance {
	ds, s := theorem44Scheme()
	return Theorem44Instance{
		DB: ds,
		Sigma: []deps.Dependency{
			deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
			deps.NewIND("R", deps.Attrs("A"), "R", deps.Attrs("B")),
		},
		Goal: deps.NewFD("R", deps.Attrs("B"), deps.Attrs("A")),
		Witness: &LazyRelation{
			Scheme: s,
			Tuple: func(i int) data.Tuple {
				if i == 0 {
					return data.Tuple{data.Int(1), data.Int(1)}
				}
				return data.Tuple{data.Int(i + 1), data.Int(i)}
			},
		},
	}
}

// CheckWitness verifies, over the first n tuples, the three defining
// properties of the instance's infinite witness:
//
//   - the FD R: A -> B holds on every finite window (and, the A entries
//     being pairwise distinct across the whole relation, on the infinite
//     relation);
//   - the IND R[A] ⊆ R[B] holds in the windowed sense appropriate for an
//     infinite relation: every A entry among the first n tuples appears as
//     a B entry among the first n+1 tuples;
//   - the goal is violated already by the window (a violation in a prefix
//     is a violation in the whole relation, both for INDs — a missing
//     element stays missing, which CheckWitness confirms by scanning the
//     larger window — and for FDs).
func (t Theorem44Instance) CheckWitness(n int) error {
	small := t.Witness.Window(n)
	big := t.Witness.Window(2*n + 2)

	// FD on the window.
	for _, d := range t.Sigma {
		if f, ok := d.(deps.FD); ok {
			sat, err := small.Satisfies(f)
			if err != nil {
				return err
			}
			if !sat {
				return fmt.Errorf("counterex: window violates %v", f)
			}
		}
	}
	// IND into the larger window.
	rel := t.Witness.Scheme.Name()
	smallRel, _ := small.Relation(rel)
	bigRel, _ := big.Relation(rel)
	for _, d := range t.Sigma {
		ind, ok := d.(deps.IND)
		if !ok {
			continue
		}
		left, err := smallRel.Project(ind.X)
		if err != nil {
			return err
		}
		right, err := bigRel.Project(ind.Y)
		if err != nil {
			return err
		}
		rightSet := map[string]bool{}
		for _, r := range right {
			rightSet[r.String()] = true
		}
		for _, l := range left {
			if !rightSet[l.String()] {
				return fmt.Errorf("counterex: windowed IND %v fails at %v", ind, l)
			}
		}
	}
	// The goal is violated.
	switch g := t.Goal.(type) {
	case deps.FD:
		sat, err := small.Satisfies(g)
		if err != nil {
			return err
		}
		if sat {
			return fmt.Errorf("counterex: window does not yet violate the goal FD %v", g)
		}
	case deps.IND:
		// Some left projection value of the small window must be missing
		// from the big window's right projection (missing values never
		// appear later in these constructions: the goal violation is the
		// value 0, and every later A entry is larger).
		left, err := smallRel.Project(g.X)
		if err != nil {
			return err
		}
		right, err := bigRel.Project(g.Y)
		if err != nil {
			return err
		}
		rightSet := map[string]bool{}
		for _, r := range right {
			rightSet[r.String()] = true
		}
		missing := false
		for _, l := range left {
			if !rightSet[l.String()] {
				missing = true
				break
			}
		}
		if !missing {
			return fmt.Errorf("counterex: window does not violate the goal IND %v", g)
		}
	}
	return nil
}

// NoFiniteCounterexample exhaustively searches all relations over R(A,B)
// with tuples drawn from {0, ..., domain-1}² and at most maxTuples tuples,
// confirming that none satisfies the instance's Σ while violating the
// goal — the finite-implication half of Theorem 4.4. It returns the number
// of databases examined.
func (t Theorem44Instance) NoFiniteCounterexample(domain, maxTuples int) (int, error) {
	var tuples []data.Tuple
	for a := 0; a < domain; a++ {
		for b := 0; b < domain; b++ {
			tuples = append(tuples, data.Tuple{data.Int(a), data.Int(b)})
		}
	}
	n := len(tuples)
	if n > 16 {
		return 0, fmt.Errorf("counterex: domain too large for exhaustive search")
	}
	examined := 0
	for mask := 0; mask < 1<<n; mask++ {
		cnt := 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				cnt++
			}
		}
		if cnt > maxTuples {
			continue
		}
		db := data.NewDatabase(t.DB)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				db.MustInsert("R", tuples[i])
			}
		}
		examined++
		ok, _, err := db.SatisfiesAll(t.Sigma)
		if err != nil {
			return examined, err
		}
		if !ok {
			continue
		}
		sat, err := db.Satisfies(t.Goal)
		if err != nil {
			return examined, err
		}
		if !sat {
			return examined, fmt.Errorf("counterex: finite counterexample found:\n%v", db)
		}
	}
	return examined, nil
}
