package counterex

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"indfd/internal/chase"
	"indfd/internal/deps"
	"indfd/internal/rules"
	"indfd/internal/schema"
	"indfd/internal/unary"
)

func TestFig41(t *testing.T) {
	inst := Fig41()
	if err := inst.CheckWitness(50); err != nil {
		t.Errorf("Fig 4.1 witness: %v", err)
	}
	examined, err := inst.NoFiniteCounterexample(3, 4)
	if err != nil {
		t.Errorf("finite search: %v", err)
	}
	if examined == 0 {
		t.Errorf("no databases examined")
	}
}

func TestFig42(t *testing.T) {
	inst := Fig42()
	if err := inst.CheckWitness(50); err != nil {
		t.Errorf("Fig 4.2 witness: %v", err)
	}
	if _, err := inst.NoFiniteCounterexample(3, 4); err != nil {
		t.Errorf("finite search: %v", err)
	}
}

func TestNoFiniteCounterexampleRejectsHugeDomain(t *testing.T) {
	inst := Fig41()
	if _, err := inst.NoFiniteCounterexample(5, 3); err == nil {
		t.Errorf("domain 5 (25 tuples) should be rejected")
	}
}

func TestSection6Construction(t *testing.T) {
	s, err := NewSection6(3)
	if err != nil {
		t.Fatalf("NewSection6: %v", err)
	}
	if len(s.Sigma) != 8 || len(s.Deltas) != 4 {
		t.Errorf("Sigma/Deltas sizes: %d, %d", len(s.Sigma), len(s.Deltas))
	}
	if s.Goal.String() != "R0[B] <= R3[A]" {
		t.Errorf("goal = %v", s.Goal)
	}
	if _, err := NewSection6(0); err == nil {
		t.Errorf("k=0 should be rejected")
	}
	if _, err := s.ArmstrongDatabase(7); err == nil {
		t.Errorf("bad delta index should be rejected")
	}
}

func TestSection6ArmstrongShape(t *testing.T) {
	// For k=3 and j=k the construction is literally Fig 6.1.
	s, _ := NewSection6(3)
	d, err := s.ArmstrongDatabase(3)
	if err != nil {
		t.Fatalf("ArmstrongDatabase: %v", err)
	}
	r0 := d.MustRelation("R0")
	if r0.Len() != 3 {
		t.Errorf("r0 has %d tuples, want 3:\n%v", r0.Len(), r0)
	}
	for i := 1; i <= 3; i++ {
		ri := d.MustRelation(s.RelName(i))
		if ri.Len() != 2*i+3 {
			t.Errorf("r%d has %d tuples, want %d", i, ri.Len(), 2*i+3)
		}
	}
}

func TestSection6Verify(t *testing.T) {
	for k := 1; k <= 3; k++ {
		s, _ := NewSection6(k)
		rep, err := s.Verify()
		if err != nil {
			t.Fatalf("k=%d: Verify: %v", k, err)
		}
		if !rep.Ok() {
			for j := 0; j <= k; j++ {
				if !rep.ArmstrongExact[j] {
					fails, _ := s.ExactnessFailures(j)
					t.Logf("k=%d j=%d exactness failures: %v", k, j, fails)
				}
			}
			t.Errorf("k=%d: Theorem 6.1 verification failed: %+v", k, rep)
		}
		if rep.UniverseSize == 0 {
			t.Errorf("empty universe")
		}
	}
}

func TestSection7Construction(t *testing.T) {
	s, err := NewSection7(2)
	if err != nil {
		t.Fatalf("NewSection7: %v", err)
	}
	// |λ| = 1 (α_0) + n (α_i) + n (β_i) + 1 (β_n) + (n+1) (γ') + n (γ'').
	wantLambda := 1 + 2 + 2 + 1 + 3 + 2
	if len(s.Lambda) != wantLambda {
		t.Errorf("|lambda| = %d, want %d", len(s.Lambda), wantLambda)
	}
	// |Σ| = |λ| + (1 + (n+1) + 1) FDs.
	if len(s.Sigma) != wantLambda+5 {
		t.Errorf("|Sigma| = %d, want %d", len(s.Sigma), wantLambda+5)
	}
	if len(s.Betas) != 2 {
		t.Errorf("|Betas| = %d", len(s.Betas))
	}
	if err := deps.NewSet(s.Sigma...).ValidateAll(s.DB); err != nil {
		t.Errorf("Sigma invalid: %v", err)
	}
	if _, err := NewSection7(0); err == nil {
		t.Errorf("n=0 should be rejected")
	}
	if _, err := s.Fig74(5); err == nil {
		t.Errorf("Fig74 out of range should be rejected")
	}
	if _, err := s.Fig75(-1); err == nil {
		t.Errorf("Fig75 out of range should be rejected")
	}
}

func TestLemma72(t *testing.T) {
	for n := 1; n <= 3; n++ {
		s, _ := NewSection7(n)
		res, err := s.Lemma72(chase.Options{})
		if err != nil {
			t.Fatalf("n=%d: Lemma72: %v", n, err)
		}
		if res.Verdict != chase.Implied {
			t.Errorf("n=%d: Σ should imply F: A -> C, got %v", n, res.Verdict)
		}
	}
}

func TestFig71NoNontrivialRD(t *testing.T) {
	s, _ := NewSection7(2)
	fig, err := s.Fig71()
	if err != nil {
		t.Fatalf("Fig71: %v", err)
	}
	ok, bad, err := fig.SatisfiesAll(s.Sigma)
	if err != nil || !ok {
		t.Fatalf("Fig 7.1 violates Σ member %v (%v):\n%v", bad, err, fig)
	}
	for _, tau := range s.Universe() {
		rd, isRD := tau.(deps.RD)
		if !isRD || rd.Trivial() {
			continue
		}
		sat, err := fig.Satisfies(rd)
		if err != nil {
			t.Fatal(err)
		}
		if sat {
			t.Errorf("Fig 7.1 satisfies nontrivial RD %v:\n%v", rd, fig)
		}
	}
}

func TestFig72FDsExactlyPhiPlus(t *testing.T) {
	s, _ := NewSection7(2)
	fig, err := s.Fig72()
	if err != nil {
		t.Fatalf("Fig72: %v", err)
	}
	ok, bad, err := fig.SatisfiesAll(s.Sigma)
	if err != nil || !ok {
		t.Fatalf("Fig 7.2 violates Σ member %v (%v)", bad, err)
	}
	for _, tau := range s.Universe() {
		f, isFD := tau.(deps.FD)
		if !isFD {
			continue
		}
		sat, err := fig.Satisfies(f)
		if err != nil {
			t.Fatal(err)
		}
		if sat != s.InPhiPlus(f) {
			t.Errorf("Fig 7.2: FD %v satisfied=%v, in φ⁺=%v", f, sat, s.InPhiPlus(f))
		}
	}
}

func TestFig73INDsExactlyLambdaPlus(t *testing.T) {
	s, _ := NewSection7(2)
	fig := s.Fig73()
	ok, bad, err := fig.SatisfiesAll(s.Sigma)
	if err != nil || !ok {
		t.Fatalf("Fig 7.3 violates Σ member %v (%v):\n%v", bad, err, fig)
	}
	for _, tau := range s.Universe() {
		d, isIND := tau.(deps.IND)
		if !isIND {
			continue
		}
		sat, err := fig.Satisfies(d)
		if err != nil {
			t.Fatal(err)
		}
		inL, err := s.InLambdaPlus(d)
		if err != nil {
			t.Fatal(err)
		}
		if sat != inL {
			t.Errorf("Fig 7.3: IND %v satisfied=%v, in λ⁺=%v", d, sat, inL)
		}
	}
}

func TestSection7Verify(t *testing.T) {
	for n := 2; n <= 3; n++ {
		s, _ := NewSection7(n)
		rep, err := s.Verify(chase.Options{})
		if err != nil {
			t.Fatalf("n=%d: Verify: %v", n, err)
		}
		if !rep.Ok() {
			t.Errorf("n=%d: Theorem 7.1 verification failed: %+v", n, rep)
		}
		if rep.NonMemberCount == 0 || rep.UniverseSize == 0 {
			t.Errorf("n=%d: suspicious counts: %+v", n, rep)
		}
	}
}

// The remark after Theorem 6.1: d obeys no nontrivial MVD, extending the
// negative result to FDs, INDs and MVDs together.
func TestSection6MVDRemark(t *testing.T) {
	for k := 1; k <= 3; k++ {
		s, _ := NewSection6(k)
		for j := 0; j <= k; j++ {
			ok, err := s.ViolatesAllNontrivialMVDs(j)
			if err != nil {
				t.Fatalf("k=%d j=%d: %v", k, j, err)
			}
			if !ok {
				t.Errorf("k=%d j=%d: d_j satisfies a nontrivial MVD", k, j)
			}
		}
	}
}

// The Section 7 verification at n = 4 (covering k ≤ 3); guarded by
// -short since the universe grows with n.
func TestSection7VerifyLarger(t *testing.T) {
	if testing.Short() {
		t.Skip("n = 4 verification is slow")
	}
	s, err := NewSection7(4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Verify(chase.Options{})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !rep.Ok() {
		t.Errorf("n=4: Theorem 7.1 verification failed: %+v", rep)
	}
}

// Gamma membership sanity for Section 7: Σ ⊆ Γ, σ ∉ Γ, trivial RDs ∈ Γ,
// nontrivial RDs ∉ Γ.
func TestSection7GammaMembership(t *testing.T) {
	s, _ := NewSection7(2)
	for _, d := range s.Sigma {
		in, err := s.GammaContains(d)
		if err != nil {
			t.Fatal(err)
		}
		if !in {
			t.Errorf("Σ member %v not in Γ", d)
		}
	}
	in, err := s.GammaContains(s.Goal)
	if err != nil {
		t.Fatal(err)
	}
	if in {
		t.Errorf("σ must not be in Γ")
	}
	if in, _ := s.GammaContains(deps.NewRD("F", deps.Attrs("A"), deps.Attrs("A"))); !in {
		t.Errorf("trivial RD should be in Γ (ω)")
	}
	if in, _ := s.GammaContains(deps.NewRD("F", deps.Attrs("A"), deps.Attrs("B"))); in {
		t.Errorf("nontrivial RD should not be in Γ")
	}
	// Projections of λ members are in Γ (λ⁺): F[C] ⊆ H_n[D].
	if in, _ := s.GammaContains(deps.NewIND("F", deps.Attrs("C"), s.H(2), deps.Attrs("D"))); !in {
		t.Errorf("λ⁺ projection should be in Γ")
	}
	// EMVDs are outside the sentence universe.
	if in, _ := s.GammaContains(deps.NewEMVD("F", deps.Attrs("A"), deps.Attrs("B"), deps.Attrs("C"))); in {
		t.Errorf("EMVD cannot be in Γ")
	}
}

// The unary engine agrees with the Section 6 verification on every unary
// member of the universe: satisfied-by-all-witnesses iff in Γ − δ for the
// corresponding j — spot-checked via finite implication from Σ.
func TestSection6UnaryConsequencesAreInGamma(t *testing.T) {
	s, _ := NewSection6(2)
	sys, err := s.UnarySystem()
	if err != nil {
		t.Fatal(err)
	}
	gamma := deps.NewSet(s.Gamma()...)
	// Every nontrivial unary consequence of Σ under UNRESTRICTED
	// implication lies in Γ (Γ contains Σ and trivials; unrestricted
	// consequences of the Σ cycle are just Σ's own members and trivials
	// up to projection — the interesting finite-only ones are exactly
	// the FiniteGap).
	for _, d := range sys.AllFiniteConsequences() {
		unr, err := sys.ImpliesUnrestricted(d)
		if err != nil {
			t.Fatal(err)
		}
		if unr && !d.Trivial() && !gamma.Contains(d) {
			t.Errorf("unrestricted consequence %v escaped Γ", d)
		}
	}
	if len(sys.FiniteGap()) == 0 {
		t.Errorf("the Section 6 cycle must have finite-only consequences")
	}
}

// Theorem 5.1 run exhaustively on the smallest interesting FD+IND
// universe: all unary FDs and INDs over the single scheme R(A,B), with
// finite implication decided exactly by the unary engine. The Theorem 4.4
// counting rule has two antecedents, so no 1-ary complete axiomatization
// exists even here; the exhaustive search also reports whether 2-ary
// suffices on this scheme (the paper's Section 6 needs k+1 relations to
// defeat k-ary rules, so a single 2-attribute relation being 2-ary
// axiomatizable is consistent with — and complements — Theorem 6.1).
func TestExhaustiveKaryOverSingleRelation(t *testing.T) {
	db := schema.MustDatabase(schema.MustScheme("R", "A", "B"))
	var universe []deps.Dependency
	for _, x := range []string{"A", "B"} {
		for _, y := range []string{"A", "B"} {
			universe = append(universe,
				deps.NewFD("R", deps.Attrs(x), deps.Attrs(y)),
				deps.NewIND("R", deps.Attrs(x), "R", deps.Attrs(y)),
			)
		}
	}
	memo := map[string]bool{}
	oracle := func(T []deps.Dependency, tau deps.Dependency) (bool, error) {
		key := tau.Key() + "§"
		sorted := append([]deps.Dependency(nil), T...)
		rules.SortDeps(sorted)
		for _, d := range sorted {
			key += d.Key() + ";"
		}
		if v, ok := memo[key]; ok {
			return v, nil
		}
		sys, err := unary.New(db, T)
		if err != nil {
			return false, err
		}
		v, err := sys.ImpliesFinite(tau)
		if err != nil {
			return false, err
		}
		memo[key] = v
		return v, nil
	}
	ok1, w, err := rules.KaryCompleteExists(universe, oracle, 1)
	if err != nil {
		t.Fatalf("k=1: %v", err)
	}
	if ok1 {
		t.Errorf("no 1-ary complete axiomatization should exist (the counting rule is binary)")
	}
	if w != nil {
		if err := w.Check(universe, oracle, 1); err != nil {
			t.Errorf("k=1 witness does not check: %v", err)
		}
		t.Logf("k=1 witness: Γ of %d sentences, escaping τ = %v", len(w.Gamma), w.Tau)
	}
	ok2, w2, err := rules.KaryCompleteExists(universe, oracle, 2)
	if err != nil {
		t.Fatalf("k=2: %v", err)
	}
	t.Logf("2-ary complete axiomatization over R(A,B): %v (oracle cache: %d entries)", ok2, len(memo))
	if !ok2 && w2 != nil {
		t.Logf("k=2 witness: Γ of %d sentences, escaping τ = %v", len(w2.Gamma), w2.Tau)
	}
}

// updateGolden regenerates the golden trace files instead of comparing:
//
//	go test ./internal/counterex/ -run TestLemma72TraceGolden -update
var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestLemma72TraceGolden pins the chase's Lemma 7.2 derivation at n=2 —
// the mechanized form of the paper's fourteen-step equality chain —
// line by line against a golden file. The chase applies rules in
// deterministic order, so any drift in rule ordering, null naming, or
// trace formatting shows up as a diff here.
func TestLemma72TraceGolden(t *testing.T) {
	s, err := NewSection7(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Lemma72(chase.Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != chase.Implied {
		t.Fatalf("verdict = %v, want implied", res.Verdict)
	}
	got := strings.Join(res.Trace, "\n") + "\n"
	path := filepath.Join("testdata", "lemma72_n2_trace.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	wantLines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	gotLines := res.Trace
	for i := 0; i < len(wantLines) || i < len(gotLines); i++ {
		var w, g string
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if w != g {
			t.Errorf("trace line %d:\n  got:  %q\n  want: %q", i+1, g, w)
		}
	}
	if len(gotLines) != len(wantLines) {
		t.Errorf("trace has %d lines, golden has %d", len(gotLines), len(wantLines))
	}
}

// TestLemma72TraceEnginesAgree pins the Lemma 7.2 derivation of the
// semi-naive chase engine byte-for-byte against the naive reference
// engine, at the golden n=2 and at a deeper n. The trace renders
// union-find representatives, so this catches any drift in rule order,
// representative choice, or formatting between the two engines.
func TestLemma72TraceEnginesAgree(t *testing.T) {
	for _, n := range []int{2, 4, 6} {
		s, err := NewSection7(n)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Lemma72(chase.Options{Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		want, err := chase.ReferenceImpliesFD(s.DB, s.Sigma, s.Goal, chase.Options{Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		if got.Verdict != want.Verdict || got.Rounds != want.Rounds || got.Tuples != want.Tuples {
			t.Fatalf("n=%d: verdict/rounds/tuples %v/%d/%d, reference %v/%d/%d",
				n, got.Verdict, got.Rounds, got.Tuples, want.Verdict, want.Rounds, want.Tuples)
		}
		if len(got.Trace) != len(want.Trace) {
			t.Fatalf("n=%d: trace has %d lines, reference has %d", n, len(got.Trace), len(want.Trace))
		}
		for i := range got.Trace {
			if got.Trace[i] != want.Trace[i] {
				t.Errorf("n=%d: trace line %d:\n  semi-naive: %q\n  reference:  %q",
					n, i+1, got.Trace[i], want.Trace[i])
			}
		}
	}
}

// TestLemma72DerivationReplay runs Lemma 7.2 with provenance on and
// replays the extracted derivation DAG as an independent proof check:
// the leaves must be exactly the two seed F-tuples of the chase's test
// database, every internal node must fire a rule of Σ, and Verify must
// mechanically re-derive the goal equalities from the leaves. This is
// the machine-checked form of the paper's fourteen-step equality chain.
func TestLemma72DerivationReplay(t *testing.T) {
	for _, n := range []int{2, 4} {
		s, err := NewSection7(n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Lemma72(chase.Options{Provenance: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != chase.Implied {
			t.Fatalf("n=%d: verdict = %v, want implied", n, res.Verdict)
		}
		d := res.Derivation
		if d == nil {
			t.Fatalf("n=%d: implied with provenance on but no derivation", n)
		}
		seeds, inds, fds, rds := d.Stats()
		if seeds != 2 {
			t.Errorf("n=%d: %d seed leaves, want the 2 F-tuples of the FD test database", n, seeds)
		}
		if inds == 0 || fds == 0 {
			t.Errorf("n=%d: derivation has %d IND and %d FD firings; Lemma 7.2 needs both", n, inds, fds)
		}
		if rds != 0 {
			t.Errorf("n=%d: %d RD firings in a Σ with no repair dependencies", n, rds)
		}
		rules := make(map[string]bool, len(s.Sigma))
		for _, dep := range s.Sigma {
			rules[dep.String()] = true
		}
		for _, node := range d.Nodes {
			switch node.Kind {
			case "seed":
				if node.Rel != "F" {
					t.Errorf("n=%d: seed leaf in %s, want all leaves in F", n, node.Rel)
				}
			default:
				if !rules[node.Rule] {
					t.Errorf("n=%d: node n%d fires %q, which is not in Σ", n, node.ID, node.Rule)
				}
			}
		}
		// The replay proof check: re-derive the goal from the leaves.
		if err := d.Verify(s.DB, s.Sigma); err != nil {
			t.Errorf("n=%d: derivation replay failed: %v", n, err)
		}
		if want := s.Goal.String(); d.Goal != want {
			t.Errorf("n=%d: derivation goal %q, want %q", n, d.Goal, want)
		}
	}
}

// TestLemma72ProfileMatchesDerivation cross-checks the two attribution
// systems on the Lemma 7.2 instance: the Σ members the cost profiler
// reports as having fired must be exactly the rules appearing in the
// provenance derivation DAG. The minimal proof the DAG extracts and the
// raw firing log the profiler keeps are built independently (one by
// backward reachability from the goal, one by forward counting at the
// firing sites), so their agreement on this instance — where the chase
// stops the moment the goal holds and every firing feeds the equality
// chain — pins both against each other.
func TestLemma72ProfileMatchesDerivation(t *testing.T) {
	for _, n := range []int{2, 4} {
		s, err := NewSection7(n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Lemma72(chase.Options{Provenance: true, Profile: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != chase.Implied || res.Derivation == nil || res.Profile == nil {
			t.Fatalf("n=%d: verdict %v, derivation %v, profile %v", n, res.Verdict, res.Derivation != nil, res.Profile != nil)
		}
		derivRules := map[string]bool{}
		for _, node := range res.Derivation.Nodes {
			if node.Kind != "seed" {
				derivRules[node.Rule] = true
			}
		}
		fired := map[string]bool{}
		for _, d := range res.Profile.Deps {
			if d.Firings > 0 {
				fired[d.Dep] = true
			}
		}
		for r := range derivRules {
			if !fired[r] {
				t.Errorf("n=%d: derivation uses %q but the profiler saw no firing", n, r)
			}
		}
		for r := range fired {
			if !derivRules[r] {
				t.Errorf("n=%d: profiler counted firings for %q but the derivation does not use it", n, r)
			}
		}
		if len(res.Profile.Deps) != len(s.Sigma) {
			t.Errorf("n=%d: profile has %d entries, want one per Σ member (%d)", n, len(res.Profile.Deps), len(s.Sigma))
		}
	}
}
