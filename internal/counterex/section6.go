package counterex

import (
	"fmt"
	"runtime"
	"sync"

	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/enum"
	"indfd/internal/schema"
	"indfd/internal/unary"
)

// Section6 is the Theorem 6.1 construction for a given k: relation
// schemes R_0[AB], ..., R_k[AB], the dependency set
//
//	Σ = {R_i: A -> B, R_i[A] ⊆ R_{i+1}[B] : 0 ≤ i ≤ k}   (indices mod k+1)
//
// and σ = R_0[B] ⊆ R_k[A]. Σ finitely implies σ by a counting argument,
// but Γ = Σ ∪ {trivial FDs, INDs, RDs} is closed under k-ary finite
// implication, so no k-ary complete axiomatization exists for finite
// implication of FDs and INDs (with or without RDs).
type Section6 struct {
	K     int
	DB    *schema.Database
	Sigma []deps.Dependency
	// Deltas are the k+1 INDs of Σ; any ≤ k-subset of Γ misses one.
	Deltas []deps.IND
	Goal   deps.IND
}

// RelName returns the name of R_i.
func (s Section6) RelName(i int) string { return fmt.Sprintf("R%d", i) }

// NewSection6 builds the construction for k ≥ 1.
func NewSection6(k int) (*Section6, error) {
	if k < 1 {
		return nil, fmt.Errorf("counterex: Section 6 needs k ≥ 1, got %d", k)
	}
	s := &Section6{K: k}
	var schemes []*schema.Scheme
	for i := 0; i <= k; i++ {
		schemes = append(schemes, schema.MustScheme(s.RelName(i), "A", "B"))
	}
	s.DB = schema.MustDatabase(schemes...)
	for i := 0; i <= k; i++ {
		fd := deps.NewFD(s.RelName(i), deps.Attrs("A"), deps.Attrs("B"))
		ind := deps.NewIND(s.RelName(i), deps.Attrs("A"), s.RelName((i+1)%(k+1)), deps.Attrs("B"))
		s.Sigma = append(s.Sigma, fd, ind)
		s.Deltas = append(s.Deltas, ind)
	}
	s.Goal = deps.NewIND(s.RelName(0), deps.Attrs("B"), s.RelName(k), deps.Attrs("A"))
	return s, nil
}

// Universe returns the dependency universe of the Section 6 argument: FDs
// with at most one attribute on the left and exactly one on the right
// (including the R: ∅ -> A constants of Case 1), INDs of width at most 2,
// and unary RDs, over the construction's scheme.
func (s *Section6) Universe() []deps.Dependency {
	var out []deps.Dependency
	for _, name := range s.DB.Names() {
		sch, _ := s.DB.Scheme(name)
		attrs := sch.Attrs()
		for _, y := range attrs {
			out = append(out, deps.NewFD(name, nil, []schema.Attribute{y}))
			for _, x := range attrs {
				out = append(out, deps.NewFD(name, []schema.Attribute{x}, []schema.Attribute{y}))
			}
		}
	}
	for _, d := range enum.INDs(s.DB, enum.Options{MaxWidth: 2}) {
		out = append(out, d)
	}
	for _, r := range enum.RDs(s.DB) {
		out = append(out, r)
	}
	return out
}

// Gamma returns Γ = Σ ∪ {trivial members of the universe}.
func (s *Section6) Gamma() []deps.Dependency {
	gamma := deps.NewSet(s.Sigma...)
	for _, d := range s.Universe() {
		if d.Trivial() {
			gamma.Add(d)
		}
	}
	return gamma.All()
}

// UnarySystem returns the unary-implication engine loaded with Σ (all of
// Σ is unary, so the engine decides finite implication exactly).
func (s *Section6) UnarySystem() (*unary.System, error) {
	return unary.New(s.DB, s.Sigma)
}

// ArmstrongDatabase builds the Fig 6.1 database d_j for the omitted IND
// δ_j = R_j[A] ⊆ R_{j+1}[B]: a finite database that obeys exactly
// (Γ − δ_j) ∩ Universe(). The paper exhibits d for j = k (δ = R_k[A] ⊆
// R_0[B]) and appeals to symmetry; here the construction is rotated so
// relation R_{(j+1+t) mod (k+1)} plays the role of the paper's r_t.
//
// In the paper's coordinates (j = k):
//
//	r_0 = {((0,0),(0,k+1)), ((1,0),(1,k+1)), ((2,0),(1,k+1))}
//	r_i = {((m,i),(m,i-1)) : 0 ≤ m ≤ 2i+1} ∪ {((2i+2,i),(2i+1,i-1))}
//
// Every A column is injective (so R_i: A -> B holds), each B column
// repeats one value (so R_i: B -> A and the ∅ -> X constants fail), the
// pair namespaces make R_t[A] ⊆ R_{t+1}[B] the only candidate nontrivial
// INDs, and the broken link fails because r_{t+1}[B] has one extra value.
func (s *Section6) ArmstrongDatabase(j int) (*data.Database, error) {
	k := s.K
	if j < 0 || j > k {
		return nil, fmt.Errorf("counterex: no delta index %d", j)
	}
	db := data.NewDatabase(s.DB)
	// paper index t (0..k) -> actual relation (j+1+t) mod (k+1).
	rel := func(t int) string { return s.RelName((j + 1 + t) % (k + 1)) }
	// r_0: three tuples; B entries live in the otherwise-unused namespace
	// k+1.
	db.MustInsert(rel(0),
		data.Tuple{data.Pair(0, 0), data.Pair(0, k+1)},
		data.Tuple{data.Pair(1, 0), data.Pair(1, k+1)},
		data.Tuple{data.Pair(2, 0), data.Pair(1, k+1)},
	)
	for t := 1; t <= k; t++ {
		for m := 0; m <= 2*t+1; m++ {
			db.MustInsert(rel(t), data.Tuple{data.Pair(m, t), data.Pair(m, t-1)})
		}
		db.MustInsert(rel(t), data.Tuple{data.Pair(2*t+2, t), data.Pair(2*t+1, t-1)})
	}
	return db, nil
}

// Section6Report summarizes the mechanized verification of Theorem 6.1.
type Section6Report struct {
	// SigmaImpliesGoalFinitely confirms Σ ⊨fin σ (unary engine).
	SigmaImpliesGoalFinitely bool
	// GoalNotImpliedUnrestrictedly confirms Σ ⊭ σ.
	GoalNotImpliedUnrestrictedly bool
	// GoalNotInGamma confirms σ ∉ Γ.
	GoalNotInGamma bool
	// ArmstrongExact[j] reports that d_j obeys exactly (Γ − δ_j) within
	// the universe.
	ArmstrongExact []bool
	// UniverseSize is the number of candidate dependencies checked.
	UniverseSize int
}

// Ok reports whether every check passed.
func (r Section6Report) Ok() bool {
	if !r.SigmaImpliesGoalFinitely || !r.GoalNotImpliedUnrestrictedly || !r.GoalNotInGamma {
		return false
	}
	for _, e := range r.ArmstrongExact {
		if !e {
			return false
		}
	}
	return true
}

// Verify runs the full mechanized Theorem 6.1 argument:
//
//  1. Σ ⊨fin σ but Σ ⊭ σ (unary engine);
//  2. σ ∉ Γ;
//  3. for every j, the Armstrong database d_j obeys exactly (Γ − δ_j)
//     restricted to the universe.
//
// Together with the pigeonhole fact that any T ⊆ Γ with |T| ≤ k misses
// some δ_j, (3) yields that Γ is closed under k-ary finite implication
// (if T ⊨fin τ, then d_j ⊨ τ since d_j ⊨ T, so τ ∈ Γ − δ_j ⊆ Γ), while
// (1) and (2) show it is not closed under finite implication — the
// Theorem 5.1 witness.
func (s *Section6) Verify() (Section6Report, error) {
	var rep Section6Report
	sys, err := s.UnarySystem()
	if err != nil {
		return rep, err
	}
	fin, err := sys.ImpliesFinite(s.Goal)
	if err != nil {
		return rep, err
	}
	rep.SigmaImpliesGoalFinitely = fin
	unr, err := sys.ImpliesUnrestricted(s.Goal)
	if err != nil {
		return rep, err
	}
	rep.GoalNotImpliedUnrestrictedly = !unr

	gamma := deps.NewSet(s.Gamma()...)
	rep.GoalNotInGamma = !gamma.Contains(s.Goal)

	universe := s.Universe()
	rep.UniverseSize = len(universe)
	for j := 0; j <= s.K; j++ {
		d, err := s.ArmstrongDatabase(j)
		if err != nil {
			return rep, err
		}
		want := gamma.Minus(s.Deltas[j])
		exact, err := scanExact(universe, d, want)
		if err != nil {
			return rep, err
		}
		rep.ArmstrongExact = append(rep.ArmstrongExact, exact)
	}
	return rep, nil
}

// ExactnessFailures lists, for diagnostic use, the universe members whose
// satisfaction in d_j disagrees with membership in Γ − δ_j.
func (s *Section6) ExactnessFailures(j int) ([]string, error) {
	d, err := s.ArmstrongDatabase(j)
	if err != nil {
		return nil, err
	}
	gamma := deps.NewSet(s.Gamma()...).Minus(s.Deltas[j])
	var out []string
	for _, tau := range s.Universe() {
		sat, err := d.Satisfies(tau)
		if err != nil {
			return nil, err
		}
		if sat != gamma.Contains(tau) {
			out = append(out, fmt.Sprintf("%v: satisfied=%v inGamma=%v", tau, sat, gamma.Contains(tau)))
		}
	}
	return out, nil
}

// ViolatesAllNontrivialMVDs checks the remark after Theorem 6.1: the
// Armstrong database d_j obeys no nontrivial multivalued dependency, so
// the same proof shows there is no k-ary complete axiomatization for
// finite implication of FDs, INDs and MVDs taken together.
func (s *Section6) ViolatesAllNontrivialMVDs(j int) (bool, error) {
	d, err := s.ArmstrongDatabase(j)
	if err != nil {
		return false, err
	}
	for _, m := range enum.MVDs(s.DB) {
		if m.Trivial() {
			continue
		}
		sat, err := d.Satisfies(m)
		if err != nil {
			return false, err
		}
		if sat {
			return false, nil
		}
	}
	return true, nil
}

// scanExact checks, in parallel, that the database satisfies exactly the
// members of want within the universe.
func scanExact(universe []deps.Dependency, d *data.Database, want *deps.Set) (bool, error) {
	nw := runtime.GOMAXPROCS(0)
	if nw > 8 {
		nw = 8
	}
	if nw < 1 {
		nw = 1
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		exact = true
		first error
	)
	chunk := (len(universe) + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := lo + chunk
		if lo >= len(universe) {
			break
		}
		if hi > len(universe) {
			hi = len(universe)
		}
		wg.Add(1)
		go func(part []deps.Dependency) {
			defer wg.Done()
			for _, tau := range part {
				sat, err := d.Satisfies(tau)
				mu.Lock()
				if err != nil && first == nil {
					first = err
				}
				if sat != want.Contains(tau) {
					exact = false
				}
				stop := !exact || first != nil
				mu.Unlock()
				if stop {
					return
				}
			}
		}(universe[lo:hi])
	}
	wg.Wait()
	return exact && first == nil, first
}
