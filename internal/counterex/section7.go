package counterex

import (
	"fmt"

	"indfd/internal/chase"
	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/enum"
	"indfd/internal/fd"
	"indfd/internal/ind"
	"indfd/internal/schema"
)

// Section7 is the Theorem 7.1 construction for parameters k < n: the
// database scheme
//
//	F[ABC], G_0[ABC], G_i[BC] (1 ≤ i ≤ n), H_i[BC] (0 ≤ i < n), H_n[BCD],
//
// the dependency set Σ (α, β, γ', γ”, δ_0, ε_i, θ_n of the paper), the
// goal σ = F: A -> C, and the sets φ (FD generators) and λ (the INDs of
// Σ). Γ = φ⁺ ∪ λ⁺ ∪ ω − {σ} is closed under k-ary implication but not
// under implication, for every k < n — so no k-ary complete
// axiomatization exists for (unrestricted or finite) implication of FDs
// and INDs, even with all FDs unary and all INDs binary.
type Section7 struct {
	N     int
	DB    *schema.Database
	Sigma []deps.Dependency
	// Goal is σ = F: A -> C.
	Goal deps.FD
	// Phi is the FD generator set φ of the paper.
	Phi []deps.FD
	// Lambda is λ, the INDs of Σ.
	Lambda []deps.IND
	// Betas[i] is β_i = F[B] ⊆ H_i[B] for 0 ≤ i < n; any T ⊆ Γ with
	// |T| ≤ k < n misses one of them.
	Betas []deps.IND
}

// G returns the name of G_i; H the name of H_i.
func (s *Section7) G(i int) string { return fmt.Sprintf("G%d", i) }

// H returns the name of H_i.
func (s *Section7) H(i int) string { return fmt.Sprintf("H%d", i) }

// NewSection7 builds the construction for n ≥ 1.
func NewSection7(n int) (*Section7, error) {
	if n < 1 {
		return nil, fmt.Errorf("counterex: Section 7 needs n ≥ 1, got %d", n)
	}
	s := &Section7{N: n}
	schemes := []*schema.Scheme{
		schema.MustScheme("F", "A", "B", "C"),
		schema.MustScheme(s.G(0), "A", "B", "C"),
	}
	for i := 1; i <= n; i++ {
		schemes = append(schemes, schema.MustScheme(s.G(i), "B", "C"))
	}
	for i := 0; i < n; i++ {
		schemes = append(schemes, schema.MustScheme(s.H(i), "B", "C"))
	}
	schemes = append(schemes, schema.MustScheme(s.H(n), "B", "C", "D"))
	s.DB = schema.MustDatabase(schemes...)

	b := deps.Attrs("B")
	bc := deps.Attrs("B", "C")
	// α_0 = F[AB] ⊆ G_0[AB]; α_i = F[B] ⊆ G_i[B] (1 ≤ i ≤ n).
	alpha0 := deps.NewIND("F", deps.Attrs("A", "B"), s.G(0), deps.Attrs("A", "B"))
	s.Lambda = append(s.Lambda, alpha0)
	for i := 1; i <= n; i++ {
		s.Lambda = append(s.Lambda, deps.NewIND("F", b, s.G(i), b))
	}
	// β_i = F[B] ⊆ H_i[B] (0 ≤ i < n); β_n = F[BC] ⊆ H_n[BD].
	for i := 0; i < n; i++ {
		beta := deps.NewIND("F", b, s.H(i), b)
		s.Lambda = append(s.Lambda, beta)
		s.Betas = append(s.Betas, beta)
	}
	s.Lambda = append(s.Lambda, deps.NewIND("F", deps.Attrs("B", "C"), s.H(n), deps.Attrs("B", "D")))
	// γ'_i = H_i[BC] ⊆ G_i[BC] (0 ≤ i ≤ n); γ''_i = H_{i-1}[BC] ⊆ G_i[BC]
	// (1 ≤ i ≤ n).
	for i := 0; i <= n; i++ {
		s.Lambda = append(s.Lambda, deps.NewIND(s.H(i), bc, s.G(i), bc))
	}
	for i := 1; i <= n; i++ {
		s.Lambda = append(s.Lambda, deps.NewIND(s.H(i-1), bc, s.G(i), bc))
	}
	// FDs of Σ: δ_0 = G_0: A -> C; ε_i = G_i: B -> C (0 ≤ i ≤ n);
	// θ_n = H_n: C -> D.
	var fds []deps.FD
	fds = append(fds, deps.NewFD(s.G(0), deps.Attrs("A"), deps.Attrs("C")))
	for i := 0; i <= n; i++ {
		fds = append(fds, deps.NewFD(s.G(i), deps.Attrs("B"), deps.Attrs("C")))
	}
	fds = append(fds, deps.NewFD(s.H(n), deps.Attrs("C"), deps.Attrs("D")))

	for _, d := range s.Lambda {
		s.Sigma = append(s.Sigma, d)
	}
	for _, f := range fds {
		s.Sigma = append(s.Sigma, f)
	}

	// φ = φ(F) ∪ φ(G_0) ∪ ... ∪ φ(H_n).
	s.Phi = append(s.Phi,
		deps.NewFD("F", deps.Attrs("A"), deps.Attrs("C")),
		deps.NewFD("F", deps.Attrs("B"), deps.Attrs("C")),
		deps.NewFD(s.G(0), deps.Attrs("A"), deps.Attrs("C")),
		deps.NewFD(s.G(0), deps.Attrs("B"), deps.Attrs("C")),
	)
	for i := 1; i <= n; i++ {
		s.Phi = append(s.Phi, deps.NewFD(s.G(i), deps.Attrs("B"), deps.Attrs("C")))
	}
	for i := 0; i < n; i++ {
		s.Phi = append(s.Phi, deps.NewFD(s.H(i), deps.Attrs("B"), deps.Attrs("C")))
	}
	s.Phi = append(s.Phi,
		deps.NewFD(s.H(n), deps.Attrs("B"), deps.Attrs("C")),
		deps.NewFD(s.H(n), deps.Attrs("C"), deps.Attrs("D")),
	)

	s.Goal = deps.NewFD("F", deps.Attrs("A"), deps.Attrs("C"))
	return s, nil
}

// Universe returns the sentence universe of Theorem 7.1: unary FDs, INDs
// of width at most 2, and unary RDs over the scheme.
func (s *Section7) Universe() []deps.Dependency {
	var out []deps.Dependency
	for _, f := range enum.FDs(s.DB, enum.Options{MaxWidth: 1}) {
		out = append(out, f)
	}
	for _, d := range enum.INDs(s.DB, enum.Options{MaxWidth: 2}) {
		out = append(out, d)
	}
	for _, r := range enum.RDs(s.DB) {
		out = append(out, r)
	}
	return out
}

// InPhiPlus reports whether the FD is a logical consequence of φ.
func (s *Section7) InPhiPlus(f deps.FD) bool { return fd.Implies(s.Phi, f) }

// InLambdaPlus reports whether the IND is a logical consequence of λ.
func (s *Section7) InLambdaPlus(d deps.IND) (bool, error) {
	return ind.Implies(s.DB, s.Lambda, d)
}

// GammaContains reports membership in Γ = φ⁺ ∪ λ⁺ ∪ ω − {σ}.
func (s *Section7) GammaContains(d deps.Dependency) (bool, error) {
	if d.Key() == deps.Dependency(s.Goal).Key() {
		return false, nil
	}
	switch dd := d.(type) {
	case deps.FD:
		return s.InPhiPlus(dd), nil
	case deps.IND:
		return s.InLambdaPlus(dd)
	case deps.RD:
		return dd.Trivial(), nil
	default:
		return false, nil
	}
}

// seed builds a seed database with the given F tuples.
func (s *Section7) seed(fTuples ...data.Tuple) *data.Database {
	db := data.NewDatabase(s.DB)
	db.MustInsert("F", fTuples...)
	return db
}

// sigmaWithout returns Σ with the IND omit removed.
func (s *Section7) sigmaWithout(omit deps.IND) []deps.Dependency {
	var out []deps.Dependency
	for _, d := range s.Sigma {
		if d.Key() == deps.Dependency(omit).Key() {
			continue
		}
		out = append(out, d)
	}
	return out
}

// Fig71 builds the database of Fig 7.1: the chase completion of the
// single tuple (a, b, c) in F under Σ. It satisfies Σ and no nontrivial
// RD (Lemma 7.4).
func (s *Section7) Fig71() (*data.Database, error) {
	return chase.Complete(s.seed(data.Tuple{"a", "b", "c"}), s.Sigma, chase.Options{})
}

// Fig72 builds the database of Fig 7.2: a completion of a five-tuple seed
// in F engineered so that an FD holds in the result iff it is in φ⁺
// (Lemma 7.5). The seed kills every non-φ⁺ FD over F; the chase
// propagation kills the rest (see the package tests, which verify the
// claim by enumeration).
func (s *Section7) Fig72() (*data.Database, error) {
	seed := s.seed(
		data.Tuple{"a1", "b1", "c1"},
		data.Tuple{"a1", "b2", "c1"},
		data.Tuple{"a2", "b1", "c1"},
		data.Tuple{"a3", "b3", "c2"},
		data.Tuple{"a4", "b4", "c1"},
	)
	return chase.Complete(seed, s.Sigma, chase.Options{})
}

// Fig73 builds the database of Fig 7.3: a hand-tuned database in which an
// IND holds iff it is in λ⁺ (Lemma 7.6). The cardinalities and value
// namespaces are chosen so that, as the paper puts it, "b_i, c_i occurs
// only in h_i, g_i and g_{i+1}".
func (s *Section7) Fig73() *data.Database {
	n := s.N
	db := data.NewDatabase(s.DB)
	val := func(prefix string, i int) data.Value { return data.Value(fmt.Sprintf("%s%d", prefix, i)) }
	// f: one tuple.
	db.MustInsert("F", data.Tuple{"a0", "b0", "c0"})
	// h_i (i < n): the required b0 row plus a private row.
	for i := 0; i < n; i++ {
		db.MustInsert(s.H(i),
			data.Tuple{"b0", "cc"},
			data.Tuple{val("bx", i), val("ccx", i)},
		)
	}
	// h_n: B, C, D.
	db.MustInsert(s.H(n),
		data.Tuple{"b0", "cc", "c0"},
		data.Tuple{val("bx", n), val("ex", n), val("cx", n)},
	)
	// g_0: the α_0 image, the γ'_0 image of h_0's private row, and a
	// private row.
	db.MustInsert(s.G(0),
		data.Tuple{"a0", "b0", "cc"},
		data.Tuple{"u2", val("bx", 0), val("ccx", 0)},
		data.Tuple{"ag0", "bg0", "cg0"},
	)
	// g_i (1 ≤ i ≤ n): h_{i-1}[BC] ∪ h_i[BC] plus a private row.
	for i := 1; i <= n; i++ {
		g := db.MustRelation(s.G(i))
		g.MustInsert(data.Tuple{"b0", "cc"})
		g.MustInsert(data.Tuple{val("bx", i-1), val("ccx", i-1)})
		if i < n {
			g.MustInsert(data.Tuple{val("bx", i), val("ccx", i)})
		} else {
			g.MustInsert(data.Tuple{val("bx", n), val("ex", n)})
		}
		g.MustInsert(data.Tuple{val("bg", i), val("cg", i)})
	}
	return db
}

// Fig74 builds the database of Fig 7.4 for 0 ≤ j < n: the chase
// completion of (a, b, c) under Σ − {β_j}. It satisfies λ − {β_j} but
// violates β_j, establishing step (6) of Lemma 7.8.
func (s *Section7) Fig74(j int) (*data.Database, error) {
	if j < 0 || j >= s.N {
		return nil, fmt.Errorf("counterex: Fig 7.4 needs 0 ≤ j < n")
	}
	return chase.Complete(s.seed(data.Tuple{"a", "b", "c"}), s.sigmaWithout(s.Betas[j]), chase.Options{})
}

// Fig75 builds the database of Fig 7.5 for 0 ≤ j < n: the chase
// completion of a two-tuple seed violating σ = F: A -> C under
// Σ − {β_j}. It satisfies (φ − {σ}) ∪ (λ − {β_j}) — hence all of
// ρ = Γ − {β_j} — while violating σ (Lemma 7.9).
func (s *Section7) Fig75(j int) (*data.Database, error) {
	if j < 0 || j >= s.N {
		return nil, fmt.Errorf("counterex: Fig 7.5 needs 0 ≤ j < n")
	}
	seed := s.seed(
		data.Tuple{"a", "b", "c"},
		data.Tuple{"a", "b'", "c'"},
	)
	return chase.Complete(seed, s.sigmaWithout(s.Betas[j]), chase.Options{})
}

// Lemma72 re-derives Σ ⊨ σ with the chase (the paper's 14-step equality
// derivation is exactly the chase's run).
func (s *Section7) Lemma72(opt chase.Options) (chase.Result, error) {
	return chase.ImpliesFD(s.DB, s.Sigma, s.Goal, opt)
}

// Section7Report summarizes the mechanized verification of Theorem 7.1.
type Section7Report struct {
	// SigmaImpliesGoal confirms Lemma 7.2 via the chase.
	SigmaImpliesGoal bool
	// FigsSatisfySigma confirms Figs 7.1–7.3 satisfy Σ.
	FigsSatisfySigma bool
	// NonMembersKilled confirms that every universe sentence outside
	// φ⁺ ∪ λ⁺ ∪ ω is violated by one of Figs 7.1–7.3 (Lemmas 7.4–7.6:
	// Σ ⊭ τ for every such τ).
	NonMembersKilled bool
	// NonMemberCount is how many such sentences were checked.
	NonMemberCount int
	// Fig74Separates[j] confirms Fig 7.4(j) satisfies λ − {β_j} and
	// violates β_j.
	Fig74Separates []bool
	// Fig75Supports[j] confirms Fig 7.5(j) satisfies every universe
	// member of Γ − {β_j} and violates σ (Lemma 7.9's engine).
	Fig75Supports []bool
	// UniverseSize is the number of sentences enumerated.
	UniverseSize int
}

// Ok reports whether every check passed.
func (r Section7Report) Ok() bool {
	if !r.SigmaImpliesGoal || !r.FigsSatisfySigma || !r.NonMembersKilled {
		return false
	}
	for _, b := range r.Fig74Separates {
		if !b {
			return false
		}
	}
	for _, b := range r.Fig75Supports {
		if !b {
			return false
		}
	}
	return true
}

// Verify runs the full mechanized Theorem 7.1 argument for this n. With
// every check passing, Γ is closed under k-ary implication for every
// k < n (pigeonhole over the β_j plus Fig 7.5's support of Γ − {β_j} and
// Figs 7.1–7.3's elimination of non-members) yet not closed under
// implication (Σ ⊆ Γ, Σ ⊨ σ ∉ Γ) — the Theorem 5.1 witness.
func (s *Section7) Verify(opt chase.Options) (Section7Report, error) {
	var rep Section7Report
	res, err := s.Lemma72(opt)
	if err != nil {
		return rep, err
	}
	rep.SigmaImpliesGoal = res.Verdict == chase.Implied

	fig71, err := s.Fig71()
	if err != nil {
		return rep, err
	}
	fig72, err := s.Fig72()
	if err != nil {
		return rep, err
	}
	fig73 := s.Fig73()
	figs := []*data.Database{fig71, fig72, fig73}

	rep.FigsSatisfySigma = true
	for _, f := range figs {
		ok, _, err := f.SatisfiesAll(s.Sigma)
		if err != nil {
			return rep, err
		}
		if !ok {
			rep.FigsSatisfySigma = false
		}
	}

	universe := s.Universe()
	rep.UniverseSize = len(universe)
	rep.NonMembersKilled = true
	for _, tau := range universe {
		member, err := s.memberOfUnion(tau)
		if err != nil {
			return rep, err
		}
		if member {
			continue
		}
		rep.NonMemberCount++
		killed := false
		for _, f := range figs {
			sat, err := f.Satisfies(tau)
			if err != nil {
				return rep, err
			}
			if !sat {
				killed = true
				break
			}
		}
		if !killed {
			rep.NonMembersKilled = false
		}
	}

	for j := 0; j < s.N; j++ {
		fig74, err := s.Fig74(j)
		if err != nil {
			return rep, err
		}
		ok := true
		for _, d := range s.Lambda {
			if d.Key() == deps.Dependency(s.Betas[j]).Key() {
				continue
			}
			sat, err := fig74.Satisfies(d)
			if err != nil {
				return rep, err
			}
			if !sat {
				ok = false
			}
		}
		sat, err := fig74.Satisfies(s.Betas[j])
		if err != nil {
			return rep, err
		}
		if sat {
			ok = false
		}
		rep.Fig74Separates = append(rep.Fig74Separates, ok)

		fig75, err := s.Fig75(j)
		if err != nil {
			return rep, err
		}
		ok = true
		for _, tau := range universe {
			if tau.Key() == deps.Dependency(s.Betas[j]).Key() {
				continue
			}
			inGamma, err := s.GammaContains(tau)
			if err != nil {
				return rep, err
			}
			if !inGamma {
				continue
			}
			sat, err := fig75.Satisfies(tau)
			if err != nil {
				return rep, err
			}
			if !sat {
				ok = false
				break
			}
		}
		satGoal, err := fig75.Satisfies(s.Goal)
		if err != nil {
			return rep, err
		}
		if satGoal {
			ok = false
		}
		rep.Fig75Supports = append(rep.Fig75Supports, ok)
	}
	return rep, nil
}

// memberOfUnion reports membership in φ⁺ ∪ λ⁺ ∪ ω (without removing σ).
func (s *Section7) memberOfUnion(d deps.Dependency) (bool, error) {
	switch dd := d.(type) {
	case deps.FD:
		return s.InPhiPlus(dd), nil
	case deps.IND:
		return s.InLambdaPlus(dd)
	case deps.RD:
		return dd.Trivial(), nil
	default:
		return false, nil
	}
}
