package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// stripVolatile drops the per-request fields (request_id, elapsed_us)
// from a JSON response body so cached and fresh answers can be compared
// byte-for-byte on everything that matters.
func stripVolatile(t *testing.T, body []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, body)
	}
	delete(m, "request_id")
	delete(m, "elapsed_us")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(out)
}

// TestImpliesCacheMissThenHit is the core cache contract: the first
// request computes (X-Cache: MISS), the second is served from the cache
// (X-Cache: HIT) with an identical answer modulo request_id/elapsed_us.
func TestImpliesCacheMissThenHit(t *testing.T) {
	_, reg, ts := newTestServer(t, Config{CacheSize: 64})
	r1, b1 := postJSON(t, ts.URL+"/v1/implies", fastImplies)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("first status = %d; body %s", r1.StatusCode, b1)
	}
	if got := r1.Header.Get("X-Cache"); got != "MISS" {
		t.Errorf("first X-Cache = %q, want MISS", got)
	}
	r2, b2 := postJSON(t, ts.URL+"/v1/implies", fastImplies)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("second status = %d; body %s", r2.StatusCode, b2)
	}
	if got := r2.Header.Get("X-Cache"); got != "HIT" {
		t.Errorf("second X-Cache = %q, want HIT", got)
	}
	if a, b := stripVolatile(t, b1), stripVolatile(t, b2); a != b {
		t.Errorf("cached answer drifted from the computed one:\nfresh:  %s\ncached: %s", a, b)
	}
	s := reg.Snapshot()
	if s.Counters["cache.misses"] != 1 || s.Counters["cache.hits"] != 1 {
		t.Errorf("cache counters = hits %d misses %d, want 1/1",
			s.Counters["cache.hits"], s.Counters["cache.misses"])
	}
}

// TestImpliesCacheCanonicalKey: semantically identical requests with Σ
// and the schema declared in a different order must share a cache entry.
func TestImpliesCacheCanonicalKey(t *testing.T) {
	_, _, ts := newTestServer(t, Config{CacheSize: 64})
	a := `{
		"schema": ["R(A, B)", "S(C, D)"],
		"sigma": ["R[A] <= S[C]", "R: A -> B"],
		"goal": "R[A] <= S[C]"
	}`
	b := `{
		"schema": ["S(C, D)", "R(A, B)"],
		"sigma": ["R: A -> B", "R[A] <= S[C]"],
		"goal": "R[A] <= S[C]"
	}`
	r1, body := postJSON(t, ts.URL+"/v1/implies", a)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("status = %d; body %s", r1.StatusCode, body)
	}
	r2, _ := postJSON(t, ts.URL+"/v1/implies", b)
	if got := r2.Header.Get("X-Cache"); got != "HIT" {
		t.Errorf("reordered request X-Cache = %q, want HIT (canonical fingerprint)", got)
	}
}

// TestImpliesCacheExplainDistinct: explain changes the answer shape, so
// it must be part of the key — and a cached explain answer must carry
// the explanation.
func TestImpliesCacheExplainDistinct(t *testing.T) {
	_, _, ts := newTestServer(t, Config{CacheSize: 64})
	plain := fastImplies
	explain := `{
		"schema": ["MGR(NAME, DEPT)", "EMP(NAME, DEPT, SAL)"],
		"sigma": ["MGR[NAME,DEPT] <= EMP[NAME,DEPT]"],
		"goal": "MGR[NAME] <= EMP[NAME]",
		"explain": true
	}`
	postJSON(t, ts.URL+"/v1/implies", plain)
	r2, b2 := postJSON(t, ts.URL+"/v1/implies", explain)
	if got := r2.Header.Get("X-Cache"); got != "MISS" {
		t.Errorf("explain variant X-Cache = %q, want MISS (distinct fingerprint)", got)
	}
	r3, b3 := postJSON(t, ts.URL+"/v1/implies", explain)
	if got := r3.Header.Get("X-Cache"); got != "HIT" {
		t.Errorf("repeated explain X-Cache = %q, want HIT", got)
	}
	var fresh, cached ImpliesResponse
	if err := json.Unmarshal(b2, &fresh); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if err := json.Unmarshal(b3, &cached); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if fresh.Explanation == "" || cached.Explanation != fresh.Explanation {
		t.Errorf("explanation not preserved through the cache:\nfresh:  %q\ncached: %q",
			fresh.Explanation, cached.Explanation)
	}
}

// TestImpliesCacheDisabledNoHeader: with CacheSize 0 the server must
// not advertise a cache at all.
func TestImpliesCacheDisabledNoHeader(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})
	r, _ := postJSON(t, ts.URL+"/v1/implies", fastImplies)
	if got := r.Header.Get("X-Cache"); got != "" {
		t.Errorf("X-Cache = %q with caching disabled, want absent", got)
	}
}

// TestImpliesCacheMetricsBypass: include_metrics wants this request's
// engine deltas, which a cached answer cannot provide — the request must
// bypass the cache in both directions (no header, no stored entry).
func TestImpliesCacheMetricsBypass(t *testing.T) {
	srv, _, ts := newTestServer(t, Config{CacheSize: 64})
	withMetrics := `{
		"schema": ["MGR(NAME, DEPT)", "EMP(NAME, DEPT, SAL)"],
		"sigma": ["MGR[NAME,DEPT] <= EMP[NAME,DEPT]"],
		"goal": "MGR[NAME] <= EMP[NAME]",
		"include_metrics": true
	}`
	r, body := postJSON(t, ts.URL+"/v1/implies", withMetrics)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status = %d; body %s", r.StatusCode, body)
	}
	if got := r.Header.Get("X-Cache"); got != "" {
		t.Errorf("X-Cache = %q on an include_metrics request, want absent", got)
	}
	if n := srv.cache.Len(); n != 0 {
		t.Errorf("include_metrics answer was cached (Len=%d)", n)
	}
	var out ImpliesResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out.Metrics == nil {
		t.Errorf("include_metrics response missing metrics")
	}
}

// TestImpliesCacheNeverStoresDeadline: a 503'd (deadline-killed) query
// returns partial work, and replaying it as "the answer" would wedge
// every later client into the first client's deadline. After a 503 the
// cache must hold nothing, and the same query must compute fresh.
func TestImpliesCacheNeverStoresDeadline(t *testing.T) {
	srv, reg, ts := newTestServer(t, Config{CacheSize: 64})
	r1, b1 := postJSON(t, ts.URL+"/v1/implies", divergentImplies)
	if r1.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503; body %s", r1.StatusCode, b1)
	}
	if got := r1.Header.Get("X-Cache"); got != "MISS" {
		t.Errorf("first X-Cache = %q, want MISS", got)
	}
	if n := srv.cache.Len(); n != 0 {
		t.Fatalf("deadline-killed partial answer was cached (Len=%d)", n)
	}
	// The identical query again: still a MISS — it recomputes (and times
	// out again) rather than replaying the partial verdict.
	r2, _ := postJSON(t, ts.URL+"/v1/implies", divergentImplies)
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second status = %d, want 503", r2.StatusCode)
	}
	if got := r2.Header.Get("X-Cache"); got != "MISS" {
		t.Errorf("second X-Cache = %q, want MISS (nothing may have been stored)", got)
	}
	if n := reg.Snapshot().Counters["cache.hits"]; n != 0 {
		t.Errorf("cache.hits = %d after two deadline kills, want 0", n)
	}
}

// TestImpliesCacheConcurrentClients hammers one server with 32
// concurrent clients mixing a handful of distinct queries. Run under
// -race this is the cache's concurrency-safety proof; functionally,
// every response must carry the same verdict its query always has.
func TestImpliesCacheConcurrentClients(t *testing.T) {
	_, reg, ts := newTestServer(t, Config{CacheSize: 8})
	queries := make([]string, 6)
	for i := range queries {
		// Distinct schemas → distinct fingerprints; cap 8 over 6 hot keys
		// plus shard-local eviction keeps Put/Get/evict paths all busy.
		queries[i] = fmt.Sprintf(`{
			"schema": ["R%d(A, B, C)"],
			"sigma": ["R%d: A -> B", "R%d: B -> C"],
			"goal": "R%d: A -> C"
		}`, i, i, i, i)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 32*20)
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				q := queries[(w+i)%len(queries)]
				// postJSON fails the test with t.Fatalf, which must not run
				// off the test goroutine; report through the channel instead.
				resp, err := http.Post(ts.URL+"/v1/implies", "application/json", strings.NewReader(q))
				if err != nil {
					errs <- err.Error()
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err.Error()
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("status %d: %s", resp.StatusCode, body)
					return
				}
				var out ImpliesResponse
				if err := json.Unmarshal(body, &out); err != nil {
					errs <- err.Error()
					return
				}
				if out.Verdict != "yes" {
					errs <- fmt.Sprintf("verdict %q, want yes (X-Cache %s)",
						out.Verdict, resp.Header.Get("X-Cache"))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatalf("concurrent client failed: %s", e)
	}
	s := reg.Snapshot()
	if s.Counters["cache.hits"] == 0 {
		t.Errorf("no cache hits across %d requests", 32*20)
	}
}
