package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"indfd/internal/obs"
	"indfd/internal/obs/tsdb"
)

// TestDebugHeaders is the table test for the shared debug-handler
// wrapper: every JSON /debug endpoint must answer with Cache-Control:
// no-store (diagnostic bodies are point-in-time process state) and an
// explicit charset on the Content-Type.
func TestDebugHeaders(t *testing.T) {
	store := tsdb.New(tsdb.Config{Resolution: time.Second, Reg: obs.New()})
	_, reg, ts := newTestServer(t, Config{TSDB: store})
	// One real request so traces/digests have content, then one sample
	// so timeseries does too.
	postJSON(t, ts.URL+"/v1/implies", fastImplies)
	store.Sample(reg.Snapshot(), time.Now())

	for _, path := range []string{
		"/debug/obs",
		"/debug/otlp",
		"/debug/traces",
		"/debug/traces/0000000000000000deadbeefdeadbeef", // 404s, headers still mandatory
		"/debug/digests",
		"/debug/timeseries",
		"/debug/alerts",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if got := resp.Header.Get("Cache-Control"); got != "no-store" {
			t.Errorf("%s Cache-Control = %q, want no-store", path, got)
		}
		if got := resp.Header.Get("Content-Type"); got != "application/json; charset=utf-8" {
			t.Errorf("%s Content-Type = %q, want application/json; charset=utf-8", path, got)
		}
	}
}

// TestTimeseriesEndpoint pins the /debug/timeseries contract: the
// disabled body, parameter validation, and the series payload.
func TestTimeseriesEndpoint(t *testing.T) {
	// History off: {"enabled": false}.
	_, _, tsOff := newTestServer(t, Config{})
	resp, err := http.Get(tsOff.URL + "/debug/timeseries")
	if err != nil {
		t.Fatal(err)
	}
	var off struct {
		Enabled bool `json:"enabled"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&off); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if off.Enabled {
		t.Error("nil store reported enabled")
	}

	store := tsdb.New(tsdb.Config{Resolution: time.Second, Reg: obs.New()})
	_, reg, ts := newTestServer(t, Config{TSDB: store})
	postJSON(t, ts.URL+"/v1/implies", fastImplies)
	now := time.Now()
	store.Sample(reg.Snapshot(), now)
	postJSON(t, ts.URL+"/v1/implies", fastImplies)
	store.Sample(reg.Snapshot(), now.Add(time.Second))

	resp, err = http.Get(ts.URL + "/debug/timeseries?match=serve.http_latency&since=5m&step=2s")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Enabled      bool  `json:"enabled"`
		ResolutionMS int64 `json:"resolution_ms"`
		SeriesCount  int   `json:"series_count"`
		Series       []struct {
			Name   string `json:"name"`
			Points []struct {
				T int64   `json:"t"`
				V float64 `json:"v"`
			} `json:"points"`
		} `json:"series"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !body.Enabled || body.ResolutionMS != 1000 || body.SeriesCount == 0 {
		t.Errorf("envelope = %+v", body)
	}
	if len(body.Series) == 0 {
		t.Fatal("no matched series")
	}
	for _, se := range body.Series {
		if !strings.Contains(se.Name, "serve.http_latency") {
			t.Errorf("match leaked series %q", se.Name)
		}
	}

	for _, bad := range []string{"?since=wat", "?step=-1s", "?step=wat"} {
		resp, err := http.Get(ts.URL + "/debug/timeseries" + bad)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s status = %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestAlertsEndpoint pins /debug/alerts: disabled body, rule echo,
// limit validation.
func TestAlertsEndpoint(t *testing.T) {
	_, _, tsOff := newTestServer(t, Config{})
	resp, err := http.Get(tsOff.URL + "/debug/alerts")
	if err != nil {
		t.Fatal(err)
	}
	var off struct {
		Enabled bool `json:"enabled"`
	}
	json.NewDecoder(resp.Body).Decode(&off) //nolint:errcheck
	resp.Body.Close()
	if off.Enabled {
		t.Error("nil watchdog reported enabled")
	}

	reg := obs.New()
	store := tsdb.New(tsdb.Config{Resolution: time.Second, Reg: reg})
	rules, err := tsdb.ParseRules("lat critical p99<10ms burn 3x over 5s/1s")
	if err != nil {
		t.Fatal(err)
	}
	wd := tsdb.NewWatchdog(store, rules, reg, nil)
	_, _, ts := newTestServer(t, Config{TSDB: store, Watchdog: wd})
	resp, err = http.Get(ts.URL + "/debug/alerts")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Enabled bool `json:"enabled"`
		Rules   []struct {
			Name   string `json:"name"`
			Clause string `json:"clause"`
		} `json:"rules"`
		Active []any `json:"active"`
		Events []any `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !body.Enabled || len(body.Rules) != 1 || body.Rules[0].Name != "lat" {
		t.Errorf("alerts body = %+v", body)
	}
	if body.Active == nil || body.Events == nil {
		t.Error("active/events must be [] when quiet, not null")
	}

	resp, err = http.Get(ts.URL + "/debug/alerts?limit=-1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative limit status = %d, want 400", resp.StatusCode)
	}
}

// TestWatchdogBurnRateIntegration is the end-to-end acceptance test:
// depserve under a traffic burst with an induced latency fault (the
// middleware's injector slows every request mid-run) must fire the
// burn-rate alert within one evaluation tick of the windows burning,
// degrade /readyz with the alert's name, and resolve once the fault
// clears — while /debug/timeseries accumulates 100+ p99 samples.
//
// The test drives the sampler loop manually (synthetic tick times, one
// Sample+Evaluate per tick) so it is deterministic under -race; the
// production ticker is the same two calls on a time.Ticker.
func TestWatchdogBurnRateIntegration(t *testing.T) {
	const (
		resolution = 100 * time.Millisecond
		faultDelay = 150 * time.Millisecond
		longTicks  = 10 // burn windows: 1s long / 200ms short at 100ms ticks
	)
	reg := obs.New()
	store := tsdb.New(tsdb.Config{Resolution: resolution, Retention: time.Minute, Reg: reg})
	rules, err := tsdb.ParseRules("lat_burn critical p99<10ms burn 3x over 1s/200ms")
	if err != nil {
		t.Fatal(err)
	}
	wd := tsdb.NewWatchdog(store, rules, reg, nil)
	// newTestServer builds its own registry — the sampler must read THAT
	// one, where the middleware's serve.http_latency observations land.
	srv, serveReg, ts := newTestServer(t, Config{TSDB: store, Watchdog: wd})
	wd.SetRecorder(srv.Recorder())

	now := time.Now()
	tick := func() {
		store.Sample(serveReg.Snapshot(), now)
		wd.Evaluate(now)
		now = now.Add(resolution)
	}
	burst := func(n int) {
		for i := 0; i < n; i++ {
			resp, body := postJSON(t, ts.URL+"/v1/implies", fastImplies)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("implies status %d: %s", resp.StatusCode, body)
			}
		}
	}

	// Phase 1 — healthy burst: 110 ticks of fast traffic. No alert may
	// fire, and the p99 series accumulates 100+ samples.
	for i := 0; i < 110; i++ {
		burst(1)
		tick()
	}
	if names := wd.CriticalNames(); names != nil {
		t.Fatalf("healthy traffic fired %v", names)
	}

	// Phase 2 — induced latency fault: every request now sleeps 150ms,
	// 15x the 10ms SLO bound. Track the tick the alert first fires on.
	srv.testDelayNS.Store(int64(faultDelay))
	firedTick := -1
	for i := 0; i < longTicks+5; i++ {
		burst(1)
		tick()
		if firedTick < 0 && len(wd.CriticalNames()) > 0 {
			firedTick = i
			break
		}
	}
	if firedTick < 0 {
		t.Fatalf("burn-rate alert never fired under a %v fault; active=%+v", faultDelay, wd.Active())
	}
	// "Within one evaluation tick": the alert must fire as soon as both
	// windows burn, not after some extra settling. The long window
	// burns at 3x once ~2 of its 10 ticks hold 150ms p99s; allow the
	// short window's 2 ticks on top.
	if firedTick > 4 {
		t.Errorf("alert fired only on fault tick %d; want within one tick of the windows burning", firedTick)
	}

	// /readyz now reports degraded — 200 with the alert's name, not
	// 503: an SLO burn should page, not get the pod killed.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready struct {
		Status   string   `json:"status"`
		Alerts   []string `json:"alerts"`
		Messages []string `json:"messages"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("degraded /readyz status = %d, want 200", resp.StatusCode)
	}
	if ready.Status != "degraded" || len(ready.Alerts) != 1 || ready.Alerts[0] != "lat_burn" {
		t.Fatalf("degraded /readyz body = %+v", ready)
	}
	if len(ready.Messages) == 0 || !strings.Contains(ready.Messages[0], "p99<10ms") {
		t.Errorf("degraded messages = %v", ready.Messages)
	}

	// Phase 3 — fault clears: fast traffic drains the short window and
	// the alert resolves.
	srv.testDelayNS.Store(0)
	resolved := false
	for i := 0; i < 10; i++ {
		burst(1)
		tick()
		if len(wd.CriticalNames()) == 0 {
			resolved = true
			break
		}
	}
	if !resolved {
		t.Fatalf("alert did not resolve after the fault cleared; active=%+v", wd.Active())
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	ready = struct {
		Status   string   `json:"status"`
		Alerts   []string `json:"alerts"`
		Messages []string `json:"messages"`
	}{}
	json.NewDecoder(resp.Body).Decode(&ready) //nolint:errcheck
	resp.Body.Close()
	if ready.Status != "ready" {
		t.Errorf("post-recovery /readyz = %+v", ready)
	}

	// The fire and resolve both landed in the flight recorder and the
	// alert log.
	events := wd.Events(0)
	if len(events) < 2 || events[0].State != "resolved" || events[0].Name != "lat_burn" {
		t.Errorf("alert log = %+v", events)
	}
	var sawRecord bool
	for _, r := range srv.Recorder().Recent(0) {
		if r.Route == "watchdog" && r.Goal == "lat_burn" {
			sawRecord = true
		}
	}
	if !sawRecord {
		t.Error("alert transitions missing from the flight recorder")
	}

	// Acceptance: /debug/timeseries serves 100+ p99 samples.
	resp, err = http.Get(ts.URL + "/debug/timeseries?match=serve.http_latency:p99")
	if err != nil {
		t.Fatal(err)
	}
	var tsBody struct {
		Series []struct {
			Name   string `json:"name"`
			Points []struct {
				T int64   `json:"t"`
				V float64 `json:"v"`
			} `json:"points"`
		} `json:"series"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tsBody); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(tsBody.Series) != 1 {
		t.Fatalf("p99 series = %+v", tsBody.Series)
	}
	if n := len(tsBody.Series[0].Points); n < 100 {
		t.Errorf("serve.http_latency:p99 samples = %d, want >= 100", n)
	}
}
