package serve

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestTruncateTracestate pins the W3C tracestate size policy: values at
// or under 512 bytes pass through byte-for-byte; longer ones are cut at
// the last member boundary that fits, never mid-member; a single
// oversized member leaves nothing to echo.
func TestTruncateTracestate(t *testing.T) {
	long := strings.Repeat("x", 600)
	members := make([]string, 0, 40)
	for len(strings.Join(members, ",")) <= 540 {
		members = append(members, "v"+string(rune('a'+len(members)%26))+"=t61rcWkgMzE")
	}
	many := strings.Join(members, ",")
	for _, tc := range []struct {
		name, in, want string
	}{
		{"empty", "", ""},
		{"single member", "congo=t61rcWkgMzE", "congo=t61rcWkgMzE"},
		{"exactly 512", strings.Repeat("a", 505) + "=" + strings.Repeat("b", 6), strings.Repeat("a", 505) + "=" + strings.Repeat("b", 6)},
		{"oversized single member", "k=" + long, ""},
		{"oversized first member", "k=" + long + ",rojo=1", ""},
	} {
		if got := truncateTracestate(tc.in); got != tc.want {
			t.Errorf("%s: truncateTracestate(%d bytes) = %q, want %q", tc.name, len(tc.in), got, tc.want)
		}
	}

	got := truncateTracestate(many)
	if len(got) > maxTracestateLen {
		t.Fatalf("truncated tracestate is %d bytes, cap %d", len(got), maxTracestateLen)
	}
	if got == "" || !strings.HasPrefix(many, got) {
		t.Fatalf("truncation rewrote members: %q", got)
	}
	if strings.HasSuffix(got, ",") {
		t.Errorf("truncated value ends in a separator: %q", got)
	}
	// Every retained member survives whole: the byte after the cut in the
	// original must be the comma that separated it from the dropped tail.
	if many[len(got)] != ',' {
		t.Errorf("cut mid-member: %q then %q", got[len(got)-8:], many[len(got):len(got)+8])
	}
}

// TestTracestateTruncatedOverHTTP drives the limit through the
// middleware: an oversized header is echoed truncated at a member
// boundary, and one giant member is dropped rather than mangled.
func TestTracestateTruncatedOverHTTP(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})
	send := func(state string) string {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/implies", strings.NewReader(fastImplies))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("traceparent", sampleTraceparent)
		req.Header.Set("tracestate", state)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("implies = %d", resp.StatusCode)
		}
		return resp.Header.Get("tracestate")
	}

	var members []string
	for i := 0; i < 60; i++ {
		members = append(members, "m"+string(rune('a'+i%26))+"=0123456789")
	}
	oversized := strings.Join(members, ",")
	got := send(oversized)
	if got == "" || len(got) > maxTracestateLen {
		t.Fatalf("echoed tracestate is %d bytes, want 1..%d", len(got), maxTracestateLen)
	}
	if !strings.HasPrefix(oversized, got) || oversized[len(got)] != ',' {
		t.Errorf("echo not cut at a member boundary: %q", got)
	}

	if got := send("k=" + strings.Repeat("z", 600)); got != "" {
		t.Errorf("oversized single member echoed as %q, want dropped", got)
	}
}
