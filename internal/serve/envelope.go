package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
)

// Error-response envelope: every error this server emits — handler
// 400s/404s, the mux's own 404/405s for unknown paths and methods,
// http.Error stragglers inside std handlers — reaches the client as
// `{"error": "..."}` with Content-Type application/json, so API
// clients parse one shape for every status. Handlers that already
// write JSON (the writeJSON path, which sets its Content-Type before
// WriteHeader) pass through untouched; the wrapper only rewrites
// responses that would otherwise leave as plain text with a status of
// 400 or above. Success responses of any content type (the /metrics
// text exposition, pprof profiles) are never touched.

// jsonErrors wraps the whole mux, converting plain-text error
// responses into the JSON envelope.
func jsonErrors(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ew := &envelopeWriter{ResponseWriter: w}
		next.ServeHTTP(ew, r)
		ew.finish()
	})
}

// envelopeWriter intercepts WriteHeader: a status >= 400 with a
// non-JSON (or unset) content type switches to buffering — the
// handler's plain-text body is captured and, at finish, re-emitted as
// the JSON envelope with the text as the error message.
type envelopeWriter struct {
	http.ResponseWriter
	status    int
	rewriting bool
	wrote     bool // WriteHeader forwarded to the underlying writer
	buf       bytes.Buffer
}

func (w *envelopeWriter) WriteHeader(code int) {
	if w.wrote || w.rewriting {
		return
	}
	ct := w.Header().Get("Content-Type")
	if code >= http.StatusBadRequest && !strings.HasPrefix(ct, "application/json") {
		w.status = code
		w.rewriting = true
		return
	}
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *envelopeWriter) Write(b []byte) (int, error) {
	if w.rewriting {
		return w.buf.Write(b)
	}
	if !w.wrote {
		w.wrote = true
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards when streaming; while buffering an error body there
// is nothing worth flushing.
func (w *envelopeWriter) Flush() {
	if w.rewriting {
		return
	}
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// finish emits the buffered error as the JSON envelope. Headers the
// handler set (Allow on a 405, X-Content-Type-Options) survive;
// Content-Type and Content-Length are replaced to match the new body.
func (w *envelopeWriter) finish() {
	if !w.rewriting {
		return
	}
	msg := strings.TrimSpace(w.buf.String())
	if msg == "" {
		msg = http.StatusText(w.status)
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Del("Content-Length")
	w.ResponseWriter.WriteHeader(w.status)
	enc := json.NewEncoder(w.ResponseWriter)
	enc.SetEscapeHTML(false)
	enc.Encode(map[string]string{"error": msg}) //nolint:errcheck
}
