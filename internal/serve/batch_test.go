package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// putJSON issues a PUT with a JSON body.
func putJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url, strings.NewReader(body))
	if err != nil {
		t.Fatalf("PUT %s: %v", url, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("PUT %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, b
}

// batchIdentityMix is a four-relation instance whose goals exercise all
// three verdicts and three engines: an IND proof, an FD chain, a mixed
// FD+IND chase, a No with a counterexample, and a budget-killed Unknown.
var batchIdentitySchema = []string{"MGR(NAME, DEPT)", "EMP(NAME, DEPT, SAL)", "R(A, B, C)", "S(T, U)"}
var batchIdentitySigma = []string{
	"MGR[NAME,DEPT] <= EMP[NAME,DEPT]",
	"R: A -> B", "R: B -> C",
	"R[A,B] <= S[T,U]", "S: T -> U",
	"S[T] <= S[U]",
}
var batchIdentityGoals = []string{
	"MGR[NAME] <= EMP[NAME]", // yes, ind engine
	"R: A -> C",              // yes, fd engine
	"R: A -> B",              // yes
	"EMP[NAME] <= MGR[NAME]", // no, with counterexample
	"S: T -> U",              // yes
	"MGR[DEPT] <= EMP[DEPT]", // yes
	"S: U -> T",              // no
	"R[A] <= S[T]",           // yes (projection of the IND)
}

// stripGoalVolatile removes the per-request fields plus the batch-only
// envelope fields so a batch answer and a lone /v1/implies body can be
// compared byte-for-byte as sorted-key JSON.
func stripGoalVolatile(t *testing.T, raw json.RawMessage) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("unmarshal answer: %v\n%s", err, raw)
	}
	delete(m, "request_id")
	delete(m, "elapsed_us")
	delete(m, "cache")
	delete(m, "status")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(out)
}

// postBatch posts a BatchRequest body and decodes the envelope plus the
// raw per-goal answers (kept raw so comparisons see the wire bytes).
func postBatch(t *testing.T, url, body string) (*http.Response, BatchResponse, []json.RawMessage) {
	t.Helper()
	resp, b := postJSON(t, url, body)
	var env struct {
		BatchResponse
		Answers []json.RawMessage `json:"answers"`
	}
	if err := json.Unmarshal(b, &env); err != nil {
		t.Fatalf("unmarshal batch response: %v\n%s", err, b)
	}
	return resp, env.BatchResponse, env.Answers
}

// TestBatchMatchesSequential is the acceptance pin: every per-goal batch
// answer must be byte-identical (verdict, trace, counterexample, proof)
// to the answer a lone /v1/implies request returns for the same goal —
// at any chase-workers and batch-fanout setting. Caching is off on both
// sides so every answer is computed fresh.
func TestBatchMatchesSequential(t *testing.T) {
	mix := map[string]any{
		"schema": batchIdentitySchema,
		"sigma":  batchIdentitySigma,
		"goals":  batchIdentityGoals,
	}
	for _, workers := range []int{0, 2} {
		for _, fanout := range []int{1, 4} {
			t.Run(fmt.Sprintf("workers=%d/fanout=%d", workers, fanout), func(t *testing.T) {
				_, _, ts := newTestServer(t, Config{ChaseWorkers: workers})
				mix["fanout"] = fanout
				body, _ := json.Marshal(mix)
				resp, env, answers := postBatch(t, ts.URL+"/v1/batch", string(body))
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("batch status = %d", resp.StatusCode)
				}
				if env.Goals != len(batchIdentityGoals) || len(answers) != len(batchIdentityGoals) {
					t.Fatalf("goals/answers = %d/%d, want %d", env.Goals, len(answers), len(batchIdentityGoals))
				}
				for i, goal := range batchIdentityGoals {
					one, _ := json.Marshal(map[string]any{
						"schema": batchIdentitySchema,
						"sigma":  batchIdentitySigma,
						"goal":   goal,
					})
					r, b := postJSON(t, ts.URL+"/v1/implies", string(one))
					if r.StatusCode != http.StatusOK {
						t.Fatalf("implies %q = %d\n%s", goal, r.StatusCode, b)
					}
					var st struct {
						Status int `json:"status"`
					}
					if err := json.Unmarshal(answers[i], &st); err != nil || st.Status != http.StatusOK {
						t.Errorf("batch answer %q status = %d, want 200", goal, st.Status)
					}
					got := stripGoalVolatile(t, answers[i])
					want := stripGoalVolatile(t, b)
					if got != want {
						t.Errorf("goal %q diverged:\nbatch:      %s\nsequential: %s", goal, got, want)
					}
				}
			})
		}
	}
}

// TestBatchBudgetKill checks the deterministic-partial path through a
// batch: a budget-killed goal answers unknown with the same partial
// statistics a lone request computes, and is never cached.
func TestBatchBudgetKill(t *testing.T) {
	srv, _, ts := newTestServer(t, Config{CacheSize: 64})
	req := `{
		"schema": ["R(A, B, C)"],
		"sigma": ["R[A,B] <= R[B,C]", "R: A, B -> C"],
		"goals": ["R: A -> C"],
		"budget": 64
	}`
	_, _, answers := postBatch(t, ts.URL+"/v1/batch", req)
	if len(answers) != 1 {
		t.Fatalf("answers = %d, want 1", len(answers))
	}
	var out BatchGoalAnswer
	if err := json.Unmarshal(answers[0], &out); err != nil {
		t.Fatal(err)
	}
	if out.Verdict != "unknown" || out.Status != http.StatusOK {
		t.Fatalf("budget-killed goal = %q/%d, want unknown/200", out.Verdict, out.Status)
	}
	if n := srv.cache.Len(); n != 0 {
		t.Errorf("budget-killed partial was cached (Len=%d)", n)
	}
	one := strings.Replace(strings.Replace(req, `"goals": ["R: A -> C"]`, `"goal": "R: A -> C"`, 1), "batch", "implies", 1)
	r, b := postJSON(t, ts.URL+"/v1/implies", one)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("implies = %d\n%s", r.StatusCode, b)
	}
	if got, want := stripGoalVolatile(t, answers[0]), stripGoalVolatile(t, b); got != want {
		t.Errorf("budget-killed answers diverged:\nbatch:      %s\nsequential: %s", got, want)
	}
	if n := srv.cache.Len(); n != 0 {
		t.Errorf("budget-killed implies answer was cached (Len=%d)", n)
	}
}

// TestBatchRegisteredSchema drives the amortized path: register once,
// batch by name, and check the response pins the (name, version) the
// answers were computed from.
func TestBatchRegisteredSchema(t *testing.T) {
	_, reg, ts := newTestServer(t, Config{})
	r, b := putJSON(t, ts.URL+"/v1/schemas/chain",
		`{"schema": ["R(A, B, C)"], "sigma": ["R: A -> B", "R: B -> C"]}`)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("PUT = %d\n%s", r.StatusCode, b)
	}
	batch := `{"schema_name": "chain", "goals": ["R: A -> C", "R: C -> A"]}`
	resp, env, answers := postBatch(t, ts.URL+"/v1/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch = %d", resp.StatusCode)
	}
	if env.Schema != "chain" || env.Version != 1 {
		t.Errorf("schema/version = %q/%d, want chain/1", env.Schema, env.Version)
	}
	var a0, a1 BatchGoalAnswer
	if err := json.Unmarshal(answers[0], &a0); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(answers[1], &a1); err != nil {
		t.Fatal(err)
	}
	if a0.Verdict != "yes" || a1.Verdict != "no" {
		t.Errorf("verdicts = %q/%q, want yes/no", a0.Verdict, a1.Verdict)
	}

	// A re-registration bumps the version the next batch reports.
	putJSON(t, ts.URL+"/v1/schemas/chain",
		`{"schema": ["R(A, B, C)"], "sigma": ["R: A -> B"]}`)
	_, env2, answers2 := postBatch(t, ts.URL+"/v1/batch", batch)
	if env2.Version != 2 {
		t.Errorf("post-edit version = %d, want 2", env2.Version)
	}
	var a2 BatchGoalAnswer
	if err := json.Unmarshal(answers2[0], &a2); err != nil {
		t.Fatal(err)
	}
	if a2.Verdict != "no" {
		t.Errorf("R: A -> C against the truncated Σ = %q, want no", a2.Verdict)
	}
	if n := reg.Counter("batch.requests").Value(); n != 2 {
		t.Errorf("batch.requests = %d, want 2", n)
	}
	if n := reg.Counter("batch.goals").Value(); n != 4 {
		t.Errorf("batch.goals = %d, want 4", n)
	}
}

// TestBatchValidation pins the 400 paths.
func TestBatchValidation(t *testing.T) {
	_, _, ts := newTestServer(t, Config{MaxBatch: 2})
	for name, body := range map[string]string{
		"no goals":       `{"schema": ["R(A, B)"], "sigma": [], "goals": []}`,
		"too many":       `{"schema": ["R(A, B)"], "sigma": [], "goals": ["R: A -> B", "R: B -> A", "R[A] <= R[B]"]}`,
		"empty goal":     `{"schema": ["R(A, B)"], "sigma": [], "goals": [""]}`,
		"bad goal":       `{"schema": ["R(A, B)"], "sigma": [], "goals": ["R: A => B"]}`,
		"unknown schema": `{"schema_name": "nope", "goals": ["R: A -> B"]}`,
		"name and inline": `{"schema_name": "x", "schema": ["R(A, B)"],
			"goals": ["R: A -> B"]}`,
	} {
		resp, b := postJSON(t, ts.URL+"/v1/batch", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400; body %s", name, resp.StatusCode, b)
		}
	}
}

// TestBatchDigestsPerGoal is the satellite pin: each goal of a batch
// observes its own query digest — counts, latency, cache hits — keyed
// by the goal's fingerprint, not one digest for the batch envelope.
func TestBatchDigestsPerGoal(t *testing.T) {
	_, _, ts := newTestServer(t, Config{CacheSize: 64})
	body := `{
		"schema": ["R(A, B, C)"],
		"sigma": ["R: A -> B", "R: B -> C"],
		"goals": ["R: A -> B", "R: A -> C", "R: C -> A"]
	}`
	for i := 0; i < 2; i++ {
		if resp, b := postJSON(t, ts.URL+"/v1/batch", body); resp.StatusCode != http.StatusOK {
			t.Fatalf("batch #%d = %d\n%s", i, resp.StatusCode, b)
		}
	}
	out := getDigests(t, ts.URL, "")
	if len(out.Digests) != 3 {
		t.Fatalf("digests = %d entries, want 3 (one per goal):\n%+v", len(out.Digests), out.Digests)
	}
	for _, d := range out.Digests {
		if d.Count != 2 {
			t.Errorf("digest %q count = %d, want 2", d.Query, d.Count)
		}
		// The second batch was served from the answer cache; the digest
		// sees the workload either way.
		if d.CacheHits != 1 {
			t.Errorf("digest %q cache_hits = %d, want 1", d.Query, d.CacheHits)
		}
		if strings.Contains(d.Query, "batch") {
			t.Errorf("digest keyed by the batch envelope, not the goal: %q", d.Query)
		}
	}
}
