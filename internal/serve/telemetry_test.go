package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"indfd/internal/obs"
)

// sampleTraceparent is the W3C spec's own example header: version 00,
// a caller trace ID and a caller span ID, sampled.
const (
	sampleTrace       = "4bf92f3577b34da6a3ce929d0e0e4736"
	sampleParent      = "00f067aa0ba902b7"
	sampleTraceparent = "00-" + sampleTrace + "-" + sampleParent + "-01"
)

// get issues a GET with extra headers and returns response + body.
func getHdr(t *testing.T, url string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp, b
}

// TestTraceparentHonored is the propagation half of the tentpole: a
// valid incoming traceparent's trace ID must surface in the response
// headers, the flight-recorder record (with the caller's span ID as
// parent), the access log, and /debug/traces/{id}; tracestate is
// echoed verbatim.
func TestTraceparentHonored(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	_, reg, ts := newTestServer(t, Config{Logger: logger, TraceBuffer: 16})

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/implies", strings.NewReader(fastImplies))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", sampleTraceparent)
	req.Header.Set("tracestate", "congo=t61rcWkgMzE,rojo=00f067aa0ba902b7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()

	if got := resp.Header.Get("X-Trace-Id"); got != sampleTrace {
		t.Errorf("X-Trace-Id = %q, want honored caller trace %q", got, sampleTrace)
	}
	trace, parent, ok := parseTraceparent(resp.Header.Get("traceparent"))
	if !ok || trace != sampleTrace {
		t.Errorf("response traceparent = %q, want trace-id %s", resp.Header.Get("traceparent"), sampleTrace)
	}
	if parent == sampleParent {
		t.Errorf("response parent-id still %q; the server must advertise its own span ID", parent)
	}
	if got := resp.Header.Get("tracestate"); got != "congo=t61rcWkgMzE,rojo=00f067aa0ba902b7" {
		t.Errorf("tracestate not echoed: %q", got)
	}
	if n := reg.Counter("http.traceparent_honored").Value(); n != 1 {
		t.Errorf("http.traceparent_honored = %d, want 1", n)
	}

	// The flight recorder filed the request under the caller's trace ID,
	// with the caller's span as parent and the server's span as its own.
	r, body := getHdr(t, ts.URL+"/debug/traces/"+sampleTrace, nil)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces/%s = %d\n%s", sampleTrace, r.StatusCode, body)
	}
	var rec obs.RequestRecord
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatalf("trace record: %v\n%s", err, body)
	}
	if rec.TraceID != sampleTrace || rec.ParentSpanID != sampleParent {
		t.Errorf("record trace/parent = %q/%q, want %s/%s",
			rec.TraceID, rec.ParentSpanID, sampleTrace, sampleParent)
	}
	if rec.SpanID != parent {
		t.Errorf("record span ID %q != response traceparent parent-id %q", rec.SpanID, parent)
	}

	// The access log carries the same trace ID.
	if !strings.Contains(logBuf.String(), `"trace_id":"`+sampleTrace+`"`) {
		t.Errorf("access log does not carry trace_id %s:\n%s", sampleTrace, logBuf.String())
	}
}

// TestTraceparentMalformedFallsBack drives the parser's rejection table
// through the server: every malformed header must yield a freshly
// minted (hence different) trace ID and count in
// http.traceparent_minted, never a 4xx — bad telemetry headers must not
// fail requests.
func TestTraceparentMalformedFallsBack(t *testing.T) {
	_, reg, ts := newTestServer(t, Config{})
	cases := []struct {
		name, header string
	}{
		{"empty", ""},
		{"garbage", "not-a-traceparent"},
		{"uppercase hex", "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01"},
		{"all-zero trace", "00-00000000000000000000000000000000-00f067aa0ba902b7-01"},
		{"all-zero parent", "00-" + sampleTrace + "-0000000000000000-01"},
		{"version ff", "ff-" + sampleTrace + "-" + sampleParent + "-01"},
		{"short trace", "00-4bf92f3577b34da6a3ce929d0e0e473-00f067aa0ba902b7-01"},
		{"v00 trailing data", sampleTraceparent + "-extra"},
		{"missing flags", "00-" + sampleTrace + "-" + sampleParent},
		{"wrong delimiters", "00_" + sampleTrace + "_" + sampleParent + "_01"},
	}
	for _, tc := range cases {
		resp, _ := getHdr(t, ts.URL+"/", map[string]string{"traceparent": tc.header})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d, malformed traceparent must not fail the request",
				tc.name, resp.StatusCode)
		}
		tid := resp.Header.Get("X-Trace-Id")
		if len(tid) != 32 || !isLowerHex(tid) {
			t.Errorf("%s: minted X-Trace-Id %q not 32-hex", tc.name, tid)
		}
		if tid == sampleTrace {
			t.Errorf("%s: trace ID %q was honored from a malformed header", tc.name, tid)
		}
	}
	if n := reg.Counter("http.traceparent_minted").Value(); n != int64(len(cases)) {
		t.Errorf("http.traceparent_minted = %d, want %d", n, len(cases))
	}
	if n := reg.Counter("http.traceparent_honored").Value(); n != 0 {
		t.Errorf("http.traceparent_honored = %d, want 0", n)
	}
	// Future version with trailing data parses (forward compatibility).
	resp, _ := getHdr(t, ts.URL+"/", map[string]string{
		"traceparent": "cc-" + sampleTrace + "-" + sampleParent + "-01-what-the-future-holds"})
	if got := resp.Header.Get("X-Trace-Id"); got != sampleTrace {
		t.Errorf("future-version traceparent: X-Trace-Id = %q, want honored %s", got, sampleTrace)
	}
}

// TestParseTraceparentUnit pins the parser directly on the spec
// examples, independent of the HTTP plumbing.
func TestParseTraceparentUnit(t *testing.T) {
	trace, parent, ok := parseTraceparent(sampleTraceparent)
	if !ok || trace != sampleTrace || parent != sampleParent {
		t.Errorf("parse(%q) = %q, %q, %t", sampleTraceparent, trace, parent, ok)
	}
	if _, _, ok := parseTraceparent("00-" + sampleTrace + "-" + sampleParent + "-00"); !ok {
		t.Errorf("flags 00 (unsampled) must still parse")
	}
	if tp := formatTraceparent(sampleTrace, sampleParent); tp != sampleTraceparent {
		t.Errorf("formatTraceparent = %q, want %q", tp, sampleTraceparent)
	}
	if _, _, ok := parseTraceparent(formatTraceparent(newTraceID(), newSpanID())); !ok {
		t.Errorf("minted IDs must round-trip through the parser")
	}
}

// TestErrorEnvelope pins the JSON error contract across every error
// source: handler 400s, the recorder 404, the mux's own 404s and 405s
// for unknown paths and wrong methods — all must come back as
// application/json {"error": "..."}.
func TestErrorEnvelope(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})
	cases := []struct {
		name, method, path, body string
		status                   int
	}{
		{"malformed JSON", http.MethodPost, "/v1/implies", "{", http.StatusBadRequest},
		{"unknown field", http.MethodPost, "/v1/implies", `{"bogus": 1}`, http.StatusBadRequest},
		{"missing goal", http.MethodPost, "/v1/implies", `{"schema":["R(A)"]}`, http.StatusBadRequest},
		{"bad limit", http.MethodGet, "/debug/traces?limit=bogus", "", http.StatusBadRequest},
		{"trace not found", http.MethodGet, "/debug/traces/nope", "", http.StatusNotFound},
		{"unknown path", http.MethodGet, "/no/such/path", "", http.StatusNotFound},
		// GET on a POST-only route falls through to the "GET /" catch-all,
		// whose not-found branch must also come back enveloped.
		{"GET on POST route", http.MethodGet, "/v1/implies", "", http.StatusNotFound},
		{"mux 405 POST on GET route", http.MethodPost, "/metrics", "{}", http.StatusMethodNotAllowed},
		{"mux 405 DELETE", http.MethodDelete, "/debug/obs", "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		var rd io.Reader
		if tc.body != "" {
			rd = strings.NewReader(tc.body)
		}
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d\n%s", tc.name, resp.StatusCode, tc.status, b)
			continue
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("%s: Content-Type = %q, want application/json", tc.name, ct)
		}
		var env map[string]any
		if err := json.Unmarshal(b, &env); err != nil {
			t.Errorf("%s: body is not JSON: %v\n%s", tc.name, err, b)
			continue
		}
		if msg, _ := env["error"].(string); msg == "" {
			t.Errorf("%s: no error message in envelope %s", tc.name, b)
		}
	}
	// The 405s must keep the Allow header the mux set.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/debug/obs", nil)
	r405, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r405.Body.Close()
	if allow := r405.Header.Get("Allow"); !strings.Contains(allow, http.MethodGet) {
		t.Errorf("405 lost the Allow header: %q", allow)
	}
	// Success responses pass through untouched: /metrics stays text.
	resp, body := getHdr(t, ts.URL+"/metrics", nil)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q, the envelope must not touch 200s", ct)
	}
	if !strings.Contains(string(body), "http_requests") {
		t.Errorf("/metrics exposition missing counters:\n%.300s", body)
	}
}

// TestHealthzBuildInfo pins the /healthz JSON body: status, uptime,
// and the build identity block.
func TestHealthzBuildInfo(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})
	resp, body := getHdr(t, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/healthz Content-Type = %q, want application/json", ct)
	}
	var out struct {
		Status        string            `json:"status"`
		UptimeSeconds *int64            `json:"uptime_seconds"`
		Build         obs.BuildIdentity `json:"build"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("/healthz body: %v\n%s", err, body)
	}
	if out.Status != "ok" {
		t.Errorf("status = %q, want ok", out.Status)
	}
	if out.UptimeSeconds == nil || *out.UptimeSeconds < 0 {
		t.Errorf("uptime_seconds missing or negative: %v", out.UptimeSeconds)
	}
	if out.Build.Version == "" || out.Build.GoVersion == "" || out.Build.Revision == "" {
		t.Errorf("build identity incomplete: %+v", out.Build)
	}
}

// TestReadyzJSON wants JSON bodies on both readiness verdicts.
func TestReadyzJSON(t *testing.T) {
	s, _, ts := newTestServer(t, Config{})
	s.SetReady(false)
	resp, body := getHdr(t, ts.URL+"/readyz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz not-ready = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), `"starting"`) {
		t.Errorf("not-ready body = %s", body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("not-ready Content-Type = %q", ct)
	}
	s.SetReady(true)
	resp, body = getHdr(t, ts.URL+"/readyz", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ready"`) {
		t.Errorf("/readyz ready = %d %s", resp.StatusCode, body)
	}
}

// TestDebugOTLP drives a query through the server and wants
// /debug/otlp to serve a well-formed OTLP/JSON document whose spans
// carry the request's trace ID and whose metrics include the request
// counter.
func TestDebugOTLP(t *testing.T) {
	_, _, ts := newTestServer(t, Config{TraceBuffer: 16, Service: "depserve-test"})
	resp, _ := postJSON(t, ts.URL+"/v1/implies", fastImplies)
	tid := resp.Header.Get("X-Trace-Id")

	r, body := getHdr(t, ts.URL+"/debug/otlp", nil)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("/debug/otlp = %d", r.StatusCode)
	}
	var doc obs.OTLPDocument
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/debug/otlp is not OTLP JSON: %v\n%.300s", err, body)
	}
	if len(doc.ResourceSpans) == 0 || len(doc.ResourceMetrics) == 0 {
		t.Fatalf("document missing spans or metrics: %d/%d",
			len(doc.ResourceSpans), len(doc.ResourceMetrics))
	}
	var svc string
	for _, kv := range doc.ResourceSpans[0].Resource.Attributes {
		if kv.Key == "service.name" {
			svc = kv.Value.StringValue
		}
	}
	if svc != "depserve-test" {
		t.Errorf("service.name = %q, want depserve-test", svc)
	}
	if !strings.Contains(string(body), obs.OTLPTraceID(tid)) {
		t.Errorf("document does not carry the request's trace ID %s", tid)
	}
	if !strings.Contains(string(body), `"http.requests`) {
		t.Errorf("document does not carry the request counter family")
	}
}

// TestServeExporterIntegration is the end-to-end exporter path: a
// server with a file exporter must land every query's span in the
// JSONL sink after Close, without the handler ever blocking.
func TestServeExporterIntegration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "otlp.jsonl")
	reg := obs.New()
	exp, err := obs.NewExporter(obs.ExporterConfig{
		Reg:      reg,
		FilePath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Reg:      reg,
		Logger:   slog.New(slog.NewJSONHandler(io.Discard, nil)),
		Exporter: exp,
	}
	s := New(cfg)
	s.SetReady(true)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp, _ := postJSON(t, ts.URL+"/v1/implies", fastImplies)
	tid := resp.Header.Get("X-Trace-Id")
	// Probes are not exported.
	getHdr(t, ts.URL+"/healthz", nil)
	if err := exp.Close(); err != nil {
		t.Fatalf("exporter close: %v", err)
	}

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), obs.OTLPTraceID(tid)) {
		t.Errorf("exported file does not carry trace %s:\n%.300s", tid, b)
	}
	// No exported span may be a probe's — walk every JSONL document's
	// span attributes (metrics legitimately carry a /healthz label).
	for _, line := range strings.Split(strings.TrimSpace(string(b)), "\n") {
		var doc obs.OTLPDocument
		if err := json.Unmarshal([]byte(line), &doc); err != nil {
			t.Fatalf("export line is not OTLP JSON: %v\n%.200s", err, line)
		}
		for _, rs := range doc.ResourceSpans {
			for _, ss := range rs.ScopeSpans {
				for _, sp := range ss.Spans {
					for _, kv := range sp.Attributes {
						if kv.Key == "http.route" && kv.Value.StringValue == "/healthz" {
							t.Errorf("probe request leaked into the export: span %s", sp.Name)
						}
					}
				}
			}
		}
	}
	if n := reg.Counter("obs.export_spans").Value(); n == 0 {
		t.Errorf("obs.export_spans = 0, want > 0")
	}
	if n := reg.Counter("obs.export_dropped").Value(); n != 0 {
		t.Errorf("obs.export_dropped = %d, want 0", n)
	}
}

// TestExemplarCarriesTraceID checks the histogram exemplar contract:
// after one request, the latency histogram's exemplar is the
// response's trace ID.
func TestExemplarCarriesTraceID(t *testing.T) {
	_, reg, ts := newTestServer(t, Config{})
	resp, _ := postJSON(t, ts.URL+"/v1/implies", fastImplies)
	tid := resp.Header.Get("X-Trace-Id")
	snap := reg.Snapshot()
	var found bool
	for name, h := range snap.Histograms {
		if !strings.Contains(name, "/v1/implies") {
			continue
		}
		for _, b := range h.Buckets {
			if b.Exemplar == tid {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no latency bucket carries exemplar %s", tid)
	}
}

// TestProbeStillTraced: /healthz is not recorded, but its response
// still carries full trace headers so probes are debuggable too.
func TestProbeStillTraced(t *testing.T) {
	_, _, ts := newTestServer(t, Config{TraceBuffer: 16})
	resp, _ := getHdr(t, ts.URL+"/healthz", map[string]string{"traceparent": sampleTraceparent})
	if got := resp.Header.Get("X-Trace-Id"); got != sampleTrace {
		t.Errorf("probe X-Trace-Id = %q, want honored %s", got, sampleTrace)
	}
	r, _ := getHdr(t, ts.URL+"/debug/traces/"+sampleTrace, nil)
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("probe was recorded (status %d), probes must not evict real traces", r.StatusCode)
	}
}

// Ensure newTestServer-based servers see SampleRuntime uptime move —
// a sanity check that /metrics no longer needs the old inline gauge.
func TestMetricsUptimeGauge(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})
	time.Sleep(10 * time.Millisecond)
	_, body := getHdr(t, ts.URL+"/metrics", nil)
	if !strings.Contains(string(body), "process_uptime_seconds") {
		t.Errorf("/metrics missing process_uptime_seconds:\n%.300s", body)
	}
	if !strings.Contains(string(body), "process_build_info") {
		t.Errorf("/metrics missing process_build_info:\n%.300s", body)
	}
}
