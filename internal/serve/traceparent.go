package serve

import (
	"context"
	"fmt"
	"math/rand/v2"
	"strings"
)

// W3C Trace Context (https://www.w3.org/TR/trace-context/): the
// traceparent header carries "<version>-<trace-id>-<parent-id>-<flags>"
// with a 2-hex version, a 32-hex trace ID, a 16-hex parent span ID and
// 2-hex flags, all lowercase, IDs never all-zero. depserve is one hop
// inside somebody else's optimizer or data-quality pipeline, so it
// honors an incoming trace ID — the whole point of propagation is that
// the caller's backend sees this service's spans under the caller's
// trace — and advertises its own span ID back in the response
// traceparent. A missing or malformed header falls back to a freshly
// minted trace ID; either way every response carries a valid
// traceparent plus the legacy X-Trace-Id.

// traceKey is the context key under which the request's trace context
// travels.
type traceKey struct{}

// traceContext is the per-request W3C identity the middleware resolves.
type traceContext struct {
	traceID      string // 32-hex; incoming when valid, else minted
	spanID       string // 16-hex; this server's own span, always minted
	parentSpanID string // 16-hex; the caller's span ID, "" when none
	remote       bool   // true when traceID was honored from the caller
}

// TraceID returns the request's W3C trace ID — the value of the
// response's X-Trace-Id header and traceparent trace-id field — or ""
// when the context did not pass through the middleware.
func TraceID(ctx context.Context) string {
	tc, _ := ctx.Value(traceKey{}).(traceContext)
	return tc.traceID
}

// parseTraceparent validates an incoming traceparent header and
// extracts the trace ID and the caller's span ID. It accepts version
// 00 exactly and tolerates future versions (> 00, != ff) that keep the
// first four fields parseable, per the spec's forward-compatibility
// rule; anything else — wrong lengths, uppercase hex, all-zero IDs,
// version ff — is rejected and the caller falls back to a minted ID.
func parseTraceparent(h string) (traceID, parentSpanID string, ok bool) {
	// "ver-traceid-spanid-flags" = 2+1+32+1+16+1+2 = 55 bytes minimum;
	// future versions may append "-..." suffixes.
	if len(h) < 55 {
		return "", "", false
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", "", false
	}
	ver, trace, parent, flags := h[0:2], h[3:35], h[36:52], h[53:55]
	if !isLowerHex(ver) || ver == "ff" {
		return "", "", false
	}
	if ver == "00" && len(h) != 55 {
		return "", "", false
	}
	if len(h) > 55 && h[55] != '-' {
		return "", "", false
	}
	if !isLowerHex(trace) || allZero(trace) {
		return "", "", false
	}
	if !isLowerHex(parent) || allZero(parent) {
		return "", "", false
	}
	if !isLowerHex(flags) {
		return "", "", false
	}
	return trace, parent, true
}

// formatTraceparent renders the response header: version 00, the
// request's trace ID, this server's span ID, flags 01 (sampled — the
// span was recorded, that is what the flight recorder and exporter
// do).
func formatTraceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// maxTracestateLen is the W3C tracestate size bound: the spec requires
// propagators to pass at least 512 bytes and permits trimming beyond
// that, provided entries are dropped whole (section 3.3.1.5).
const maxTracestateLen = 512

// truncateTracestate bounds an echoed tracestate header to
// maxTracestateLen bytes, cutting only at list-member boundaries — a
// partially transmitted member would corrupt the vendor key/value it
// belongs to. Headers within the bound pass through verbatim; an
// oversized single member (no comma to cut at) drops entirely.
func truncateTracestate(state string) string {
	if len(state) <= maxTracestateLen {
		return state
	}
	cut := strings.LastIndexByte(state[:maxTracestateLen+1], ',')
	if cut < 0 {
		return ""
	}
	return strings.TrimRight(state[:cut], " \t,")
}

// newTraceID mints a 32-hex W3C trace ID. math/rand/v2's global
// generator is runtime-seeded, so IDs differ across processes; the
// low-order OR guarantees the all-zero ID (invalid per spec) is
// unreachable.
func newTraceID() string {
	return fmt.Sprintf("%016x%016x", rand.Uint64(), rand.Uint64()|1)
}

// newSpanID mints a 16-hex W3C span ID.
func newSpanID() string {
	return fmt.Sprintf("%016x", rand.Uint64()|1)
}

// isLowerHex reports whether s is entirely lowercase hex digits.
func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return len(s) > 0
}

// allZero reports whether s is all '0's.
func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}
