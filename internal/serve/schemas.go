// The schema registry endpoints: named, versioned (schema, Σ) sets
// whose compilation cost — parse, validation, canonicalization,
// per-member fingerprints, a warm chase-engine pool — is paid once at
// PUT time and amortized over every /v1/implies and /v1/batch request
// that references the name.
//
//	PUT    /v1/schemas/{name}          register or replace (version++)
//	GET    /v1/schemas/{name}          current version's schema and Σ
//	DELETE /v1/schemas/{name}          remove (versions never reused)
//	GET    /v1/schemas                 list
//	POST   /v1/schemas/{name}/algebra  union/intersect/minimal-cover
//
// A PUT or DELETE also sweeps the answer cache, but only surgically:
// the registry reports which members changed (the symmetric difference
// of the old and new canonical Σ), and the cache's footprint index
// evicts exactly the answers whose derivation touched one of them —
// registering a dependency over unrelated relations evicts nothing.
package serve

import (
	"net/http"

	"indfd/internal/deps"
	"indfd/internal/registry"
)

// SchemaPutRequest is the PUT /v1/schemas/{name} body, the schema and
// sigma fields of an ImpliesRequest (goal-less).
type SchemaPutRequest struct {
	Schema []string `json:"schema"`
	Sigma  []string `json:"sigma"`
}

// SchemaResponse describes one registered schema version.
type SchemaResponse struct {
	RequestID string   `json:"request_id"`
	Name      string   `json:"name"`
	Version   int64    `json:"version,omitempty"`
	Relations []string `json:"relations,omitempty"`
	// Sigma is the canonical dependency set (deduplicated, in insertion
	// order), rendered in the .dep text forms.
	Sigma []string `json:"sigma,omitempty"`
	// Invalidated is how many cached answers the registration evicted
	// via the footprint index (PUT and DELETE only).
	Invalidated int    `json:"invalidated"`
	Deleted     bool   `json:"deleted,omitempty"`
	Error       string `json:"error,omitempty"`
}

// SchemaListResponse is the GET /v1/schemas reply.
type SchemaListResponse struct {
	RequestID string           `json:"request_id"`
	Schemas   []SchemaListItem `json:"schemas"`
}

// SchemaListItem summarizes one registered schema.
type SchemaListItem struct {
	Name      string `json:"name"`
	Version   int64  `json:"version"`
	Relations int    `json:"relations"`
	Sigma     int    `json:"sigma"`
}

// AlgebraRequest is the POST /v1/schemas/{name}/algebra body. Op is
// "union", "intersect" (With names the second operand) or
// "minimal-cover" (unary: the FD fragment is replaced by its minimal
// cover, INDs/RDs pass through). RegisterAs, when set, registers the
// result under that name (over the operand's schema) and reports its
// new version.
type AlgebraRequest struct {
	Op         string `json:"op"`
	With       string `json:"with,omitempty"`
	RegisterAs string `json:"register_as,omitempty"`
}

// AlgebraResponse is the algebra reply: the resulting dependency set in
// canonical order, plus registration details when register_as was set.
type AlgebraResponse struct {
	RequestID string   `json:"request_id"`
	Op        string   `json:"op"`
	Sigma     []string `json:"sigma"`
	Name      string   `json:"name,omitempty"`
	Version   int64    `json:"version,omitempty"`
	Error     string   `json:"error,omitempty"`
}

func (s *Server) handleSchemaPut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	resp := SchemaResponse{RequestID: RequestID(r.Context()), Name: name}
	var req SchemaPutRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	e, changed, err := s.schemas.Put(name, depDocument(req.Schema, req.Sigma, nil, false))
	if err != nil {
		resp.Error = err.Error()
		s.writeJSON(w, http.StatusBadRequest, resp)
		return
	}
	// Surgical cache sweep: only answers whose footprint touched a
	// changed member go; everything else stays warm.
	resp.Invalidated = s.cache.InvalidateMembers(changed...)
	fillSchema(&resp, e)
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSchemaGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	resp := SchemaResponse{RequestID: RequestID(r.Context()), Name: name}
	e, ok := s.schemas.Get(name)
	if !ok {
		resp.Error = "schema " + name + " is not registered"
		s.writeJSON(w, http.StatusNotFound, resp)
		return
	}
	fillSchema(&resp, e)
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSchemaDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	resp := SchemaResponse{RequestID: RequestID(r.Context()), Name: name}
	e, ok := s.schemas.Delete(name)
	if !ok {
		resp.Error = "schema " + name + " is not registered"
		s.writeJSON(w, http.StatusNotFound, resp)
		return
	}
	// Every member of the deleted Σ is gone; its dependent answers go
	// with it (answers over other schemas sharing no member stay).
	keys := make([]string, 0, len(e.Members))
	for k := range e.Members {
		keys = append(keys, k)
	}
	resp.Invalidated = s.cache.InvalidateMembers(keys...)
	resp.Deleted = true
	resp.Version = e.Version
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSchemaList(w http.ResponseWriter, r *http.Request) {
	resp := SchemaListResponse{RequestID: RequestID(r.Context()), Schemas: []SchemaListItem{}}
	for _, e := range s.schemas.List() {
		resp.Schemas = append(resp.Schemas, SchemaListItem{
			Name: e.Name, Version: e.Version,
			Relations: len(e.DB.Names()), Sigma: len(e.Sigma),
		})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSchemaAlgebra(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	resp := AlgebraResponse{RequestID: RequestID(r.Context())}
	var req AlgebraRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	resp.Op = req.Op
	bad := func(status int, msg string) {
		resp.Error = msg
		s.writeJSON(w, status, resp)
	}
	a, ok := s.schemas.Get(name)
	if !ok {
		bad(http.StatusNotFound, "schema "+name+" is not registered")
		return
	}
	var result []deps.Dependency
	var err error
	switch req.Op {
	case "union", "intersect":
		if req.With == "" {
			bad(http.StatusBadRequest, req.Op+" needs a second operand in \"with\"")
			return
		}
		b, ok := s.schemas.Get(req.With)
		if !ok {
			bad(http.StatusNotFound, "schema "+req.With+" is not registered")
			return
		}
		if req.Op == "union" {
			result, err = registry.Union(a, b)
		} else {
			result, err = registry.Intersect(a, b)
		}
		if err != nil {
			bad(http.StatusBadRequest, err.Error())
			return
		}
	case "minimal-cover":
		result = registry.MinimalCover(a)
	default:
		bad(http.StatusBadRequest, "unknown op "+req.Op+" (want union, intersect or minimal-cover)")
		return
	}
	resp.Sigma = make([]string, 0, len(result))
	for _, d := range result {
		resp.Sigma = append(resp.Sigma, d.String())
	}
	if req.RegisterAs != "" {
		schemaLines := make([]string, 0, len(a.DB.Names()))
		for _, n := range a.DB.Names() {
			sch, _ := a.DB.Scheme(n)
			schemaLines = append(schemaLines, sch.String())
		}
		e, changed, err := s.schemas.Put(req.RegisterAs, depDocument(schemaLines, resp.Sigma, nil, false))
		if err != nil {
			bad(http.StatusBadRequest, err.Error())
			return
		}
		s.cache.InvalidateMembers(changed...)
		resp.Name, resp.Version = e.Name, e.Version
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func fillSchema(resp *SchemaResponse, e *registry.Entry) {
	resp.Version = e.Version
	resp.Relations = resp.Relations[:0]
	for _, n := range e.DB.Names() {
		sch, _ := e.DB.Scheme(n)
		resp.Relations = append(resp.Relations, sch.String())
	}
	resp.Sigma = make([]string, 0, len(e.Sigma))
	for _, d := range e.Sigma {
		resp.Sigma = append(resp.Sigma, d.String())
	}
}
