package serve

// Registry race hammer: concurrent writers republishing a schema while
// readers run batches against it. Every batch answer must be consistent
// with a Σ that actually existed under the version the response echoes —
// no torn reads of a half-swapped entry, no answer computed from one Σ
// and stamped with another's version. Run under -race (make race-hammer
// exercises -cpu 1,2,8).

import (
	"encoding/json"
	"net/http"
	"sync"
	"testing"
)

func TestRegistryRaceHammer(t *testing.T) {
	_, _, ts := newTestServer(t, Config{CacheSize: 256, MaxBatch: 16})

	// Two alternating publications of the same name. Under sigmaChain the
	// goal R: A -> C is implied (yes); under sigmaCut it is not (no).
	const (
		sigmaChain = `{"schema": ["R(A, B, C)"], "sigma": ["R: A -> B", "R: B -> C"]}`
		sigmaCut   = `{"schema": ["R(A, B, C)"], "sigma": ["R: A -> B"]}`
		batchBody  = `{"schema_name": "hammer", "goals": ["R: A -> C", "R: A -> B"]}`
	)
	if r, b := putJSON(t, ts.URL+"/v1/schemas/hammer", sigmaChain); r.StatusCode != http.StatusOK {
		t.Fatalf("seed PUT = %d\n%s", r.StatusCode, b)
	}

	const (
		writers        = 32
		readers        = 32
		putsPerWriter  = 8
		readsPerReader = 8
	)

	// versionSigma records, for every successful PUT, which Σ that
	// version published. Versions are allocated under the registry's
	// lock, so each maps to exactly one Σ.
	var (
		mu           sync.Mutex
		versionSigma = map[int64]string{1: sigmaChain}
	)

	var wg sync.WaitGroup
	errs := make(chan string, writers*putsPerWriter+readers*readsPerReader)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < putsPerWriter; i++ {
				body := sigmaChain
				if (w+i)%2 == 1 {
					body = sigmaCut
				}
				r, raw := putJSON(t, ts.URL+"/v1/schemas/hammer", body)
				if r.StatusCode != http.StatusOK {
					errs <- "PUT status " + r.Status
					continue
				}
				var resp SchemaResponse
				if err := json.Unmarshal(raw, &resp); err != nil {
					errs <- "PUT decode: " + err.Error()
					continue
				}
				mu.Lock()
				versionSigma[resp.Version] = body
				mu.Unlock()
			}
		}(w)
	}

	type observed struct {
		version int64
		chainV  string // verdict for R: A -> C
		directV string // verdict for R: A -> B
	}
	seen := make(chan observed, readers*readsPerReader)
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < readsPerReader; i++ {
				r, raw := postJSON(t, ts.URL+"/v1/batch", batchBody)
				if r.StatusCode != http.StatusOK {
					errs <- "batch status " + r.Status
					continue
				}
				var resp BatchResponse
				if err := json.Unmarshal(raw, &resp); err != nil {
					errs <- "batch decode: " + err.Error()
					continue
				}
				if len(resp.Answers) != 2 {
					errs <- "batch returned wrong answer count"
					continue
				}
				seen <- observed{resp.Version, resp.Answers[0].Verdict, resp.Answers[1].Verdict}
			}
		}()
	}
	wg.Wait()
	close(errs)
	close(seen)
	for e := range errs {
		t.Error(e)
	}

	// Post-hoc consistency: each response's version must name a recorded
	// publication, and its verdicts must match that publication's Σ.
	checked := 0
	for obs := range seen {
		sigma, ok := versionSigma[obs.version]
		if !ok {
			t.Errorf("batch echoed version %d, which no successful PUT published", obs.version)
			continue
		}
		want := "yes"
		if sigma == sigmaCut {
			want = "no"
		}
		if obs.chainV != want {
			t.Errorf("version %d: R: A -> C = %q, but that version's Σ implies %q",
				obs.version, obs.chainV, want)
		}
		if obs.directV != "yes" {
			t.Errorf("version %d: R: A -> B = %q, implied under every published Σ",
				obs.version, obs.directV)
		}
		checked++
	}
	if checked < readers*readsPerReader/2 {
		t.Errorf("only %d batch responses checked; hammer lost too many reads", checked)
	}
}
