package serve

// Footprint-aware cache correctness: differential pinning of cached
// against uncached answers over the fixed fixtures and seeded random
// instances, and the surgical-invalidation contract — a registry edit
// evicts exactly the cached answers whose footprint touched a changed
// member, so registering a dependency over unrelated relations leaves
// the whole cache warm (whole-Σ keying would evict everything).

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"testing"
)

// randomImpliesBody draws one random implication instance — schema,
// dependency set, goal, tuple budget — rendered as a /v1/implies JSON
// body. The distribution mirrors the chase package's differential
// sweep: 2-4 relations of width 2-4, a 2-5 member Σ mixing FDs, RDs
// and INDs, any goal kind.
func randomImpliesBody(r *rand.Rand) string {
	attrPool := []string{"A", "B", "C", "D"}
	nRels := 2 + r.IntN(3)
	schema := make([]string, nRels)
	names := make([]string, nRels)
	widths := make([]int, nRels)
	for i := range schema {
		names[i] = fmt.Sprintf("R%d", i)
		w := 2 + r.IntN(3)
		widths[i] = w
		attrs := ""
		for j := 0; j < w; j++ {
			if j > 0 {
				attrs += ", "
			}
			attrs += attrPool[j]
		}
		schema[i] = fmt.Sprintf("%s(%s)", names[i], attrs)
	}
	pick := func(i, n int) string {
		perm := r.Perm(widths[i])[:n]
		out := ""
		for k, p := range perm {
			if k > 0 {
				out += ", "
			}
			out += attrPool[p]
		}
		return out
	}
	randFD := func() string {
		i := r.IntN(nRels)
		return fmt.Sprintf("%s: %s -> %s", names[i], pick(i, 1+r.IntN(widths[i]-1)), pick(i, 1))
	}
	randRD := func() string {
		i := r.IntN(nRels)
		return fmt.Sprintf("%s[%s == %s]", names[i], pick(i, 1), pick(i, 1))
	}
	randIND := func() string {
		i, j := r.IntN(nRels), r.IntN(nRels)
		w := min(widths[i], widths[j])
		n := 1 + r.IntN(w)
		return fmt.Sprintf("%s[%s] <= %s[%s]", names[i], pick(i, n), names[j], pick(j, n))
	}
	randDep := func() string {
		switch r.IntN(4) {
		case 0:
			return randFD()
		case 1:
			return randRD()
		default:
			return randIND()
		}
	}
	var sigma []string
	for k := 2 + r.IntN(4); k > 0; k-- {
		sigma = append(sigma, randDep())
	}
	var goal string
	switch r.IntN(3) {
	case 0:
		goal = randFD()
	case 1:
		goal = randRD()
	default:
		goal = randIND()
	}
	req := map[string]any{
		"schema":     schema,
		"sigma":      sigma,
		"goal":       goal,
		"budget":     40 + r.IntN(160),
		"timeout_ms": 2000,
	}
	b, err := json.Marshal(req)
	if err != nil {
		panic(err)
	}
	return string(b)
}

// diffCachedUncached posts one body to the uncached server once and to
// the cached server twice, and requires all three answers identical
// modulo request_id/elapsed_us. Returns whether the trial counted
// (deadline-killed trials are skipped: their partial statistics are
// wall-clock-dependent) and whether the second cached post was a HIT.
func diffCachedUncached(t *testing.T, label, body, uncachedURL, cachedURL string) (compared, hit bool) {
	t.Helper()
	r0, b0 := postJSON(t, uncachedURL+"/v1/implies", body)
	r1, b1 := postJSON(t, cachedURL+"/v1/implies", body)
	r2, b2 := postJSON(t, cachedURL+"/v1/implies", body)
	for i, r := range []*http.Response{r0, r1, r2} {
		if r.StatusCode == http.StatusServiceUnavailable {
			return false, false
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("%s: post %d status = %d", label, i, r.StatusCode)
		}
	}
	want := stripVolatile(t, b0)
	if got := stripVolatile(t, b1); got != want {
		t.Errorf("%s: first cached answer diverged:\ncached:   %s\nuncached: %s", label, got, want)
	}
	if got := stripVolatile(t, b2); got != want {
		t.Errorf("%s: repeat cached answer diverged:\ncached:   %s\nuncached: %s", label, got, want)
	}
	return true, r2.Header.Get("X-Cache") == "HIT"
}

// fixtureBodies is the fixed corpus: the instance families the repo's
// engine tests pin, rendered as request bodies.
func fixtureBodies() map[string]string {
	return map[string]string{
		"prop4.1 fd": `{"schema": ["R(X, Y)", "S(T, U)"],
			"sigma": ["R[X,Y] <= S[T,U]", "S: T -> U"], "goal": "R: X -> Y"}`,
		"prop4.1 rd": `{"schema": ["R(X, Y)", "S(T, U)"],
			"sigma": ["R[X,Y] <= S[T,U]", "S: T -> U"], "goal": "R[X == Y]"}`,
		"prop4.1 not-implied": `{"schema": ["R(X, Y)", "S(T, U)"],
			"sigma": ["R[X,Y] <= S[T,U]", "S: T -> U"], "goal": "S: U -> T"}`,
		"ind chain": `{"schema": ["R(A, B)", "S(C, D)", "T(E, F)"],
			"sigma": ["R[A] <= S[C]", "S[C] <= T[E]"], "goal": "R[A] <= T[E]"}`,
		"ind chain not-implied": `{"schema": ["R(A, B)", "S(C, D)", "T(E, F)"],
			"sigma": ["R[A] <= S[C]", "S[C] <= T[E]"], "goal": "T[E] <= R[A]"}`,
		"fd chain": `{"schema": ["R(A, B, C, D)"],
			"sigma": ["R: A -> B", "R: B -> C", "R: C -> D"], "goal": "R: A -> D"}`,
		"thm4.4 finite": `{"schema": ["R(A, B)"],
			"sigma": ["R[A] <= R[B]", "R: A -> B"], "goal": "R[B] <= R[A]", "finite": true}`,
		"thm4.4 unrestricted": `{"schema": ["R(A, B)"],
			"sigma": ["R[A] <= R[B]", "R: A -> B"], "goal": "R[B] <= R[A]"}`,
		"divergent budget": `{"schema": ["R(A, B, C)"],
			"sigma": ["R[A,B] <= R[B,C]", "R: A, B -> C"], "goal": "R: A -> C", "budget": 64}`,
		"explain chase": `{"schema": ["R(A, B)", "S(A, B)"],
			"sigma": ["R[A,B] <= S[A,B]", "S: A -> B"], "goal": "R: A -> B", "explain": true}`,
	}
}

// TestFootprintCacheDifferential is the satellite pin: footprint-keyed
// cache answers are byte-identical to uncached answers over the fixture
// corpus plus ~400 seeded random instances — Yes verdicts (derivation
// footprints), No verdicts (profiler footprints), and budget-killed
// Unknowns, which must never be cached at all.
func TestFootprintCacheDifferential(t *testing.T) {
	_, _, uncached := newTestServer(t, Config{})
	cachedSrv, _, cached := newTestServer(t, Config{CacheSize: 4096})

	for label, body := range fixtureBodies() {
		diffCachedUncached(t, label, body, uncached.URL, cached.URL)
	}

	r := rand.New(rand.NewPCG(42, 7))
	compared, hits, unknowns := 0, 0, 0
	for trial := 0; trial < 400; trial++ {
		body := randomImpliesBody(r)
		label := fmt.Sprintf("trial %d: %s", trial, body)
		ok, hit := diffCachedUncached(t, label, body, uncached.URL, cached.URL)
		if !ok {
			continue
		}
		compared++
		if hit {
			hits++
		} else {
			unknowns++
		}
	}
	t.Logf("compared %d random instances: %d cache hits, %d uncacheable (unknown verdicts)",
		compared, hits, unknowns)
	if compared < 100 {
		t.Errorf("only %d random instances compared; generator broken", compared)
	}
	if hits == 0 {
		t.Errorf("no decided instance repeated as a cache hit")
	}

	// Every cached entry must carry a decided verdict: budget-killed
	// partials (verdict unknown) are never stored, so entries ≈ decided
	// distinct queries, strictly fewer than total trials when unknowns
	// occurred.
	if n := cachedSrv.cache.Len(); unknowns > 0 && n >= compared+len(fixtureBodies()) {
		t.Errorf("cache holds %d entries for %d compared trials; unknown verdicts leaked in",
			n, compared)
	}
}

// TestFootprintInvalidationSurgical is the tentpole's eviction pin:
// after warming the cache with goals from two IND-disconnected
// components, registering an FD over a third, untouched relation evicts
// nothing (hit-rate unchanged), editing a member of one component
// evicts exactly that component's answers, and deleting the schema
// evicts the rest.
func TestFootprintInvalidationSurgical(t *testing.T) {
	srv, reg, ts := newTestServer(t, Config{CacheSize: 64})
	// Two disjoint components over one schema — the FD chain on R and
	// the IND+FD pair on S,T — plus the never-constrained relation Z.
	put := func(sigma string) SchemaResponse {
		t.Helper()
		r, b := putJSON(t, ts.URL+"/v1/schemas/app",
			`{"schema": ["R(A, B, C)", "S(X, Y)", "T(V, W)", "Z(P, Q)"], "sigma": [`+sigma+`]}`)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("PUT = %d\n%s", r.StatusCode, b)
		}
		var out SchemaResponse
		if err := json.Unmarshal(b, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	baseSigma := `"R: A -> B", "R: B -> C", "S[X,Y] <= T[V,W]", "T: V -> W"`
	put(baseSigma)

	goals := map[string]string{
		"R component fd":  `{"schema_name": "app", "goal": "R: A -> C"}`,
		"R component no":  `{"schema_name": "app", "goal": "R: C -> A"}`,
		"ST component fd": `{"schema_name": "app", "goal": "S: X -> Y"}`,
		"ST component ind": `{"schema_name": "app",
			"goal": "S[X] <= T[V]"}`,
	}
	warm := func() map[string]string {
		t.Helper()
		out := make(map[string]string, len(goals))
		for name, body := range goals {
			r, b := postJSON(t, ts.URL+"/v1/implies", body)
			if r.StatusCode != http.StatusOK {
				t.Fatalf("%s = %d\n%s", name, r.StatusCode, b)
			}
			out[name] = r.Header.Get("X-Cache")
		}
		return out
	}
	warm()
	warmed := srv.cache.Len()
	if warmed != len(goals) {
		t.Fatalf("cache holds %d entries after warming, want %d", warmed, len(goals))
	}

	// Disjoint edit: an FD over Z touches neither component. Zero
	// evictions, and every goal repeats as a HIT.
	resp := put(baseSigma + `, "Z: P -> Q"`)
	if resp.Invalidated != 0 {
		t.Errorf("disjoint registration invalidated %d entries, want 0 (whole-Σ keying would evict all)",
			resp.Invalidated)
	}
	if n := srv.cache.Len(); n != warmed {
		t.Errorf("cache len %d after disjoint edit, want %d", n, warmed)
	}
	for name, status := range warm() {
		if status != "HIT" {
			t.Errorf("%s: X-Cache = %q after disjoint edit, want HIT", name, status)
		}
	}
	if n := reg.Counter("cache.footprint_invalidations").Value(); n != 0 {
		t.Errorf("cache.footprint_invalidations = %d after disjoint edit, want 0", n)
	}

	// Component edit: dropping R: B -> C changes only the R component.
	// Its two answers go; the S/T answers stay warm.
	resp = put(`"R: A -> B", "S[X,Y] <= T[V,W]", "T: V -> W", "Z: P -> Q"`)
	if resp.Invalidated != 2 {
		t.Errorf("R-component edit invalidated %d entries, want 2", resp.Invalidated)
	}
	statuses := warm()
	for _, name := range []string{"R component fd", "R component no"} {
		if statuses[name] != "MISS" {
			t.Errorf("%s: X-Cache = %q after its member changed, want MISS", name, statuses[name])
		}
	}
	for _, name := range []string{"ST component fd", "ST component ind"} {
		if statuses[name] != "HIT" {
			t.Errorf("%s: X-Cache = %q after an unrelated edit, want HIT", name, statuses[name])
		}
	}
	if n := reg.Counter("cache.footprint_invalidations").Value(); n != 2 {
		t.Errorf("cache.footprint_invalidations = %d, want 2", n)
	}
	// The recomputed R answers changed with the edit: the chain is cut.
	r, b := postJSON(t, ts.URL+"/v1/implies", goals["R component fd"])
	var out ImpliesResponse
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK || out.Verdict != "no" {
		t.Errorf("R: A -> C after dropping R: B -> C = %q, want no", out.Verdict)
	}

	// DELETE sweeps whatever the deleted Σ's members still pin.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/schemas/app", nil)
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var del SchemaResponse
	if err := json.NewDecoder(dr.Body).Decode(&del); err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()
	if !del.Deleted || del.Invalidated == 0 {
		t.Errorf("DELETE: deleted=%t invalidated=%d, want true and > 0", del.Deleted, del.Invalidated)
	}
}
