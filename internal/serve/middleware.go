package serve

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"indfd/internal/obs"
)

// ridKey is the context key under which the per-request ID travels.
type ridKey struct{}

// RequestID returns the request ID the middleware assigned, or "" when
// the context did not pass through the middleware.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}

// statusWriter captures the status code and body size a handler wrote,
// so the access log and the http.requests counter can label by outcome.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// Flush forwards to the underlying writer so the pprof trace endpoint
// (which streams) keeps working behind the wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with the per-request observability stack:
// a request ID (assigned, stored in the context, and echoed in the
// X-Request-ID response header), the http.in_flight gauge, a
// per-endpoint latency histogram in microseconds, a
// per-endpoint-and-status request counter, and one structured log
// record per request — at Warn with a slow_query marker when the
// request outran Config.SlowQuery, at Info otherwise.
//
// route is the label the metrics carry; it is the registered pattern,
// not the raw URL path, so label cardinality stays bounded no matter
// what clients request.
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	// The instruments are resolved once at registration, not per
	// request; the handler's hot path only touches atomics.
	latency := s.reg.Histogram(obs.MetricName("http.latency_us", "path", route))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := s.nextRequestID()
		w.Header().Set("X-Request-ID", id)
		r = r.WithContext(context.WithValue(r.Context(), ridKey{}, id))

		s.gInFlight.Add(1)
		defer s.gInFlight.Add(-1)

		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h(sw, r)
		elapsed := time.Since(start)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}

		latency.Observe(elapsed.Microseconds())
		s.reg.Counter(obs.MetricName("http.requests",
			"path", route, "code", strconv.Itoa(sw.status))).Inc()

		attrs := []any{
			"request_id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"route", route,
			"status", sw.status,
			"bytes", sw.bytes,
			"elapsed_us", elapsed.Microseconds(),
			"remote", r.RemoteAddr,
		}
		if elapsed >= s.cfg.SlowQuery {
			s.cSlow.Inc()
			attrs = append(attrs, "slow_query", true,
				"threshold_ms", s.cfg.SlowQuery.Milliseconds())
			s.log.Warn("request", attrs...)
		} else {
			s.log.Info("request", attrs...)
		}
	})
}

// nextRequestID mints a process-unique request ID: a per-process base
// (start-time derived, so IDs from different depserve runs differ) plus
// a monotone counter.
func (s *Server) nextRequestID() string {
	return fmt.Sprintf("%s-%06d", s.idBase, s.nextID.Add(1))
}
