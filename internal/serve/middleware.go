package serve

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"indfd/internal/obs"
)

// ridKey is the context key under which the per-request ID travels.
type ridKey struct{}

// RequestID returns the request ID the middleware assigned, or "" when
// the context did not pass through the middleware.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}

// recKey is the context key under which the draft flight-recorder
// record travels from the middleware into the handler.
type recKey struct{}

// record returns the request's draft RequestRecord for the handler to
// enrich (goal, verdict, engine, cache status, span tree), or nil when
// the flight recorder is off or this route is not recorded. The
// middleware finalizes and retains the record after the handler
// returns.
func record(ctx context.Context) *obs.RequestRecord {
	rec, _ := ctx.Value(recKey{}).(*obs.RequestRecord)
	return rec
}

// statusWriter captures the status code and body size a handler wrote,
// so the access log and the http.requests counter can label by outcome.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// Flush forwards to the underlying writer so the pprof trace endpoint
// (which streams) keeps working behind the wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with the per-request observability stack:
// a request ID (assigned, stored in the context, and echoed in the
// X-Request-ID response header), W3C trace context — an incoming valid
// traceparent's trace ID is honored, a malformed or absent one falls
// back to a freshly minted ID, and every response carries `traceparent`
// (with this server's own span ID as parent-id), an echoed
// `tracestate`, and the same trace ID in the legacy X-Trace-Id header —
// the http.in_flight gauge, a per-endpoint latency histogram in
// microseconds with the trace ID as each bucket's exemplar, a
// per-endpoint-and-status request counter, a flight-recorder record
// (see obs.Recorder; the handler enriches the draft via record(ctx))
// that also feeds the OTLP exporter, and one structured log record per
// request — at Warn with a slow_query marker when the request outran
// Config.SlowQuery, at Info otherwise. The trace ID in the record, the
// exemplars, the access log and both response headers is one and the
// same string, so any of them resolves at /debug/traces/{id}.
//
// route is the label the metrics carry; it is the registered pattern,
// not the raw URL path, so label cardinality stays bounded no matter
// what clients request. Liveness probes (/healthz, /readyz) are not
// recorded or exported — at typical probe rates they would evict every
// interesting record — but still carry trace IDs and exemplars.
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	// The instruments are resolved once at registration, not per
	// request; the handler's hot path only touches atomics.
	latency := s.reg.Histogram(obs.MetricName("http.latency_us", "path", route))
	recorded := route != "/healthz" && route != "/readyz"
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := s.nextRequestID()
		tc := traceContext{spanID: newSpanID()}
		if trace, parent, ok := parseTraceparent(r.Header.Get("traceparent")); ok {
			tc.traceID, tc.parentSpanID, tc.remote = trace, parent, true
			s.cTraceHonored.Inc()
			if state := truncateTracestate(r.Header.Get("tracestate")); state != "" {
				w.Header().Set("tracestate", state)
			}
		} else {
			tc.traceID = newTraceID()
			s.cTraceMinted.Inc()
		}
		w.Header().Set("X-Request-ID", id)
		w.Header().Set("X-Trace-Id", tc.traceID)
		w.Header().Set("traceparent", formatTraceparent(tc.traceID, tc.spanID))
		ctx := context.WithValue(r.Context(), ridKey{}, id)
		ctx = context.WithValue(ctx, traceKey{}, tc)
		var rec *obs.RequestRecord
		if recorded && (s.rec != nil || s.exp != nil) {
			rec = &obs.RequestRecord{
				TraceID:      tc.traceID,
				SpanID:       tc.spanID,
				ParentSpanID: tc.parentSpanID,
				Route:        route,
			}
			ctx = context.WithValue(ctx, recKey{}, rec)
		}
		r = r.WithContext(ctx)

		s.gInFlight.Add(1)
		defer s.gInFlight.Add(-1)

		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		if d := s.testDelayNS.Load(); d > 0 {
			time.Sleep(time.Duration(d)) // test-only latency fault injection
		}
		h(sw, r)
		elapsed := time.Since(start)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}

		latency.ObserveExemplar(elapsed.Microseconds(), tc.traceID)
		// The route-agnostic aggregate series feed the tsdb and the
		// watchdog's selector-less SLO clauses: one latency histogram
		// (µs) over every route, a total-request counter, and an error
		// counter. Errors are 5xx only — a client's 400 is not a burn on
		// the server's error budget, but a deadline-killed 503 is.
		s.hLatency.Observe(elapsed.Microseconds())
		s.cRequests.Inc()
		if sw.status >= 500 {
			s.cErrors.Inc()
		}
		s.reg.Counter(obs.MetricName("http.requests",
			"path", route, "code", strconv.Itoa(sw.status))).Inc()
		if rec != nil {
			rec.Status = sw.status
			rec.Start = start
			rec.DurationNS = elapsed.Nanoseconds()
			s.rec.Add(rec)
			s.exp.Export(rec)
		}

		attrs := []any{
			"request_id", id,
			"trace_id", tc.traceID,
			"method", r.Method,
			"path", r.URL.Path,
			"route", route,
			"status", sw.status,
			"bytes", sw.bytes,
			"elapsed_us", elapsed.Microseconds(),
			"remote", r.RemoteAddr,
		}
		if elapsed >= s.cfg.SlowQuery {
			s.cSlow.Inc()
			attrs = append(attrs, "slow_query", true,
				"threshold_ms", s.cfg.SlowQuery.Milliseconds())
			s.log.Warn("request", attrs...)
		} else {
			s.log.Info("request", attrs...)
		}
	})
}

// nextRequestID mints a process-unique request ID: a per-process base
// (start-time derived, so IDs from different depserve runs differ) plus
// a monotone counter.
func (s *Server) nextRequestID() string {
	return fmt.Sprintf("%s-%06d", s.idBase, s.nextID.Add(1))
}
