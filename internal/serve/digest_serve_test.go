package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"indfd/internal/obs"
)

// profiledImplies is fastImplies with per-dependency profiling on: same
// schema, Σ and goal, so the two spellings share a query fingerprint.
const profiledImplies = `{
	"schema": ["MGR(NAME, DEPT)", "EMP(NAME, DEPT, SAL)"],
	"sigma": ["MGR[NAME,DEPT] <= EMP[NAME,DEPT]"],
	"goal": "MGR[NAME] <= EMP[NAME]",
	"profile": true
}`

// digestsReply mirrors handleDigests' envelope.
type digestsReply struct {
	Capacity int                  `json:"capacity"`
	Digests  []obs.DigestSnapshot `json:"digests"`
}

func getDigests(t *testing.T, base, query string) digestsReply {
	t.Helper()
	resp, body := getHdr(t, base+"/debug/digests"+query, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/digests%s = %d\n%s", query, resp.StatusCode, body)
	}
	var out digestsReply
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("digests reply: %v\n%s", err, body)
	}
	return out
}

// TestDigestsEndpoint drives the workload-analytics loop end to end:
// repeated spellings of one query aggregate under one fingerprint
// (cache hits included), distinct queries get distinct digests, the
// reply is sorted hottest-first, and ?limit bounds it.
func TestDigestsEndpoint(t *testing.T) {
	_, reg, ts := newTestServer(t, Config{CacheSize: 64})
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/implies", fastImplies)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("implies #%d = %d\n%s", i, resp.StatusCode, body)
		}
	}
	other := strings.Replace(fastImplies, `"MGR[NAME] <= EMP[NAME]"`, `"MGR[DEPT] <= EMP[DEPT]"`, 1)
	if resp, body := postJSON(t, ts.URL+"/v1/implies", other); resp.StatusCode != http.StatusOK {
		t.Fatalf("second query = %d\n%s", resp.StatusCode, body)
	}

	out := getDigests(t, ts.URL, "")
	if out.Capacity != 256 {
		t.Errorf("capacity = %d, want the 256 default", out.Capacity)
	}
	if len(out.Digests) != 2 {
		t.Fatalf("digests = %d entries, want 2:\n%+v", len(out.Digests), out.Digests)
	}
	var hot *obs.DigestSnapshot
	for i := range out.Digests {
		if out.Digests[i].Count == 3 {
			hot = &out.Digests[i]
		}
	}
	if hot == nil {
		t.Fatalf("no digest aggregated the 3 identical posts: %+v", out.Digests)
	}
	// Two of the three identical posts were served from the answer cache
	// and still count — the digest sees the workload, not just the misses.
	if hot.CacheHits != 2 {
		t.Errorf("cache_hits = %d, want 2", hot.CacheHits)
	}
	if hot.Query == "" || hot.Fingerprint == "" {
		t.Errorf("digest lost its identity: %+v", hot)
	}
	if hot.LatencyUS.Count != 3 {
		t.Errorf("latency histogram count = %d, want 3", hot.LatencyUS.Count)
	}
	if out.Digests[0].TotalNS < out.Digests[1].TotalNS {
		t.Errorf("digests not sorted by total time: %d before %d",
			out.Digests[0].TotalNS, out.Digests[1].TotalNS)
	}
	if got := getDigests(t, ts.URL, "?limit=1"); len(got.Digests) != 1 {
		t.Errorf("limit=1 returned %d digests", len(got.Digests))
	}
	if n := reg.Counter("obs.digest_observations").Value(); n != 4 {
		t.Errorf("obs.digest_observations = %d, want 4", n)
	}

	// Bad limits get the same JSON envelope as /debug/traces.
	resp, body := getHdr(t, ts.URL+"/debug/digests?limit=x", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("limit=x = %d, want 400", resp.StatusCode)
	}
	var env map[string]string
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("400 body is not JSON: %v\n%s", err, body)
	}
	if env["request_id"] == "" || env["error"] == "" {
		t.Errorf("400 envelope = %+v, want request_id and error", env)
	}
}

// TestProfiledRequest pins the serve-layer profile contract: a profiled
// request returns dep_profile, bypasses the answer cache, and still
// lands in the same digest as its unprofiled spelling — whose hot_deps
// then carry the merged attribution.
func TestProfiledRequest(t *testing.T) {
	_, _, ts := newTestServer(t, Config{CacheSize: 64})
	resp, body := postJSON(t, ts.URL+"/v1/implies", profiledImplies)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profiled implies = %d\n%s", resp.StatusCode, body)
	}
	// Profiled requests bypass the cache entirely: no HIT, no MISS.
	if got := resp.Header.Get("X-Cache"); got != "" {
		t.Errorf("X-Cache = %q on a profiled request, want no header", got)
	}
	var out ImpliesResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, body)
	}
	if out.DepProfile == nil || len(out.DepProfile.Deps) != 1 {
		t.Fatalf("dep_profile = %+v, want the one Σ member", out.DepProfile)
	}
	dc := out.DepProfile.Deps[0]
	if dc.Kind != "ind" || dc.Firings == 0 {
		t.Errorf("attribution = %+v, want a fired ind entry", dc)
	}

	// An unprofiled response carries no profile...
	resp2, body2 := postJSON(t, ts.URL+"/v1/implies", fastImplies)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("plain implies = %d\n%s", resp2.StatusCode, body2)
	}
	if strings.Contains(string(body2), "dep_profile") {
		t.Errorf("unprofiled response leaks dep_profile:\n%s", body2)
	}

	// ...but both spellings share one digest, which keeps the profile.
	out2 := getDigests(t, ts.URL, "")
	if len(out2.Digests) != 1 {
		t.Fatalf("profiled and plain runs split into %d digests, want 1: %+v",
			len(out2.Digests), out2.Digests)
	}
	d := out2.Digests[0]
	if d.Count != 2 {
		t.Errorf("digest count = %d, want 2", d.Count)
	}
	if len(d.HotDeps) == 0 || d.HotDeps[0].Firings == 0 {
		t.Errorf("digest hot_deps = %+v, want the profiled run's attribution", d.HotDeps)
	}
}

// TestDigestsDisabled pins the off switch: a negative DigestSize serves
// an empty reply and the implies path keeps working untracked.
func TestDigestsDisabled(t *testing.T) {
	_, reg, ts := newTestServer(t, Config{DigestSize: -1})
	if resp, body := postJSON(t, ts.URL+"/v1/implies", fastImplies); resp.StatusCode != http.StatusOK {
		t.Fatalf("implies with digests off = %d\n%s", resp.StatusCode, body)
	}
	out := getDigests(t, ts.URL, "")
	if out.Capacity != 0 || len(out.Digests) != 0 {
		t.Errorf("digests off: capacity %d, %d entries, want 0/0", out.Capacity, len(out.Digests))
	}
	if n := reg.Counter("obs.digest_observations").Value(); n != 0 {
		t.Errorf("obs.digest_observations = %d with digests off", n)
	}
}

// assert404Envelope checks the /debug/traces/{id} miss contract: 404,
// JSON, request_id, and an error naming the ID.
func assert404Envelope(t *testing.T, url, id string) {
	t.Helper()
	resp, body := getHdr(t, url, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET %s = %d, want 404\n%s", url, resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("404 Content-Type = %q, want application/json", ct)
	}
	var env map[string]string
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("404 body is not JSON: %v\n%s", err, body)
	}
	if env["request_id"] == "" {
		t.Errorf("404 envelope missing request_id: %+v", env)
	}
	if !strings.Contains(env["error"], id) {
		t.Errorf("404 error %q does not name the trace ID %q", env["error"], id)
	}
}

// TestTraceLookupMisses is the regression suite for /debug/traces/{id}
// misses: an ID that never existed, an ID whose record was evicted, and
// a recorder that is disabled outright must all answer with the same
// 404 JSON envelope — never a panic, an empty 200, or a bare 404.
func TestTraceLookupMisses(t *testing.T) {
	t.Run("unknown id", func(t *testing.T) {
		_, _, ts := newTestServer(t, Config{TraceBuffer: 4})
		assert404Envelope(t, ts.URL+"/debug/traces/deadbeefdeadbeefdeadbeefdeadbeef",
			"deadbeefdeadbeefdeadbeefdeadbeef")
	})

	t.Run("evicted id", func(t *testing.T) {
		// TraceBuffer 1 rounds up to one slot per recorder shard; records
		// land in shards round-robin by sequence, so 8 further recorded
		// requests deterministically evict the first.
		_, _, ts := newTestServer(t, Config{TraceBuffer: 1})
		resp, _ := postJSON(t, ts.URL+"/v1/implies", fastImplies)
		id := resp.Header.Get("X-Trace-Id")
		if id == "" {
			t.Fatal("no X-Trace-Id on the recorded request")
		}
		if r, body := getHdr(t, ts.URL+"/debug/traces/"+id, nil); r.StatusCode != http.StatusOK {
			t.Fatalf("fresh record not resolvable: %d\n%s", r.StatusCode, body)
		}
		for i := 0; i < 8; i++ {
			getHdr(t, ts.URL+"/debug/traces", nil) // each listing is itself recorded
		}
		assert404Envelope(t, ts.URL+"/debug/traces/"+id, id)
	})

	t.Run("recorder off", func(t *testing.T) {
		_, _, ts := newTestServer(t, Config{TraceBuffer: -1})
		resp, _ := postJSON(t, ts.URL+"/v1/implies", fastImplies)
		id := resp.Header.Get("X-Trace-Id")
		if id == "" {
			t.Fatal("trace IDs must still be issued with recording off")
		}
		assert404Envelope(t, ts.URL+"/debug/traces/"+id, id)
	})
}
