package serve

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"indfd/internal/obs"
)

// newTestServer builds a Server (plus its registry) with a tight slow
// threshold and a discard logger.
func newTestServer(t *testing.T, cfg Config) (*Server, *obs.Registry, *httptest.Server) {
	t.Helper()
	reg := obs.New()
	cfg.Reg = reg
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewJSONHandler(io.Discard, nil))
	}
	s := New(cfg)
	s.SetReady(true)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, reg, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, b
}

const fastImplies = `{
	"schema": ["MGR(NAME, DEPT)", "EMP(NAME, DEPT, SAL)"],
	"sigma": ["MGR[NAME,DEPT] <= EMP[NAME,DEPT]"],
	"goal": "MGR[NAME] <= EMP[NAME]"
}`

const divergentImplies = `{
	"schema": ["R(A, B, C)"],
	"sigma": ["R[A,B] <= R[B,C]", "R: A, B -> C"],
	"goal": "R: A -> C",
	"budget": 1000000,
	"timeout_ms": 50
}`

func TestImpliesFast(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/implies", fastImplies)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200; body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Errorf("missing X-Request-ID header")
	}
	var out ImpliesResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, body)
	}
	if out.Verdict != "yes" || out.Engine != "ind" {
		t.Errorf("verdict/engine = %q/%q, want yes/ind", out.Verdict, out.Engine)
	}
	if out.Proof == "" {
		t.Errorf("expected an IND1-IND3 proof")
	}
	if out.RequestID == "" {
		t.Errorf("missing request_id in body")
	}
	if out.IND == nil || out.IND.ChainLength == 0 {
		t.Errorf("expected IND stats with a chain, got %+v", out.IND)
	}
}

// TestImpliesDeadline drives the divergent FD+IND instance with a 50ms
// deadline and wants the 503-with-partial-stats contract: verdict
// unknown, engine chase, nonzero rounds/tuples, and the context error.
func TestImpliesDeadline(t *testing.T) {
	_, reg, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/implies", divergentImplies)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503; body %s", resp.StatusCode, body)
	}
	var out ImpliesResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, body)
	}
	if out.Verdict != "unknown" || out.Engine != "chase" {
		t.Errorf("verdict/engine = %q/%q, want unknown/chase", out.Verdict, out.Engine)
	}
	if out.ChaseRounds == 0 || out.ChaseTuples == 0 {
		t.Errorf("expected partial chase stats, got rounds=%d tuples=%d",
			out.ChaseRounds, out.ChaseTuples)
	}
	if !strings.Contains(out.Error, "deadline") {
		t.Errorf("error = %q, want a deadline error", out.Error)
	}
	if n := reg.Counter("serve.deadline_exceeded").Value(); n != 1 {
		t.Errorf("serve.deadline_exceeded = %d, want 1", n)
	}
}

func TestImpliesFiniteAndExplain(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})
	// The Theorem 4.4 gap instance: under finite implication the unary
	// cycle rule derives the converse IND.
	req := `{
		"schema": ["R(A, B)"],
		"sigma": ["R[A] <= R[B]", "R: A -> B"],
		"goal": "R[B] <= R[A]",
		"finite": true,
		"explain": true
	}`
	resp, body := postJSON(t, ts.URL+"/v1/implies", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d; body %s", resp.StatusCode, body)
	}
	var out ImpliesResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out.Verdict != "yes" || out.Engine != "unary" || out.Mode != "finite" {
		t.Errorf("got verdict=%q engine=%q mode=%q, want yes/unary/finite",
			out.Verdict, out.Engine, out.Mode)
	}
	if out.Explanation == "" {
		t.Errorf("explain=true returned no explanation")
	}
}

func TestImpliesIncludeMetrics(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})
	req := strings.Replace(fastImplies, "\n}", ",\n\t\"include_metrics\": true\n}", 1)
	resp, body := postJSON(t, ts.URL+"/v1/implies", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d; body %s", resp.StatusCode, body)
	}
	var out ImpliesResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out.Metrics == nil {
		t.Fatalf("include_metrics=true returned no metrics")
	}
	if out.Metrics.Counters["ind.expanded"] == 0 {
		t.Errorf("metrics diff should show this request's ind.expanded, got %v",
			out.Metrics.Counters)
	}
}

func TestImpliesBadRequests(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"not json":      `{`,
		"unknown field": `{"goal": "R: A -> B", "budgte": 3}`,
		"missing goal":  `{"schema": ["R(A, B)"], "sigma": []}`,
		"parse error":   `{"schema": ["R(A, B)"], "sigma": ["R: A => B"], "goal": "R: A -> B"}`,
		"bad schema":    `{"schema": ["R(A, B)"], "sigma": ["S: A -> B"], "goal": "R: A -> B"}`,
	} {
		resp, b := postJSON(t, ts.URL+"/v1/implies", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400; body %s", name, resp.StatusCode, b)
		}
	}
}

func TestSatisfies(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})
	good := `{
		"schema": ["R(A, B)"],
		"sigma": ["R: A -> B"],
		"data": {"R": [["x", "1"], ["y", "2"]]}
	}`
	resp, body := postJSON(t, ts.URL+"/v1/satisfies", good)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d; body %s", resp.StatusCode, body)
	}
	var out SatisfiesResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !out.Satisfied || out.Violated != "" {
		t.Errorf("got satisfied=%t violated=%q, want satisfied", out.Satisfied, out.Violated)
	}

	bad := strings.Replace(good, `["y", "2"]`, `["x", "2"]`, 1)
	resp, body = postJSON(t, ts.URL+"/v1/satisfies", bad)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d; body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out.Satisfied || !strings.Contains(out.Violated, "A -> B") {
		t.Errorf("got satisfied=%t violated=%q, want the FD violated", out.Satisfied, out.Violated)
	}
}

// TestMetricsExposition checks that after real traffic the Prometheus
// endpoint exposes the per-endpoint latency histogram, the
// per-endpoint/per-status counters, the per-engine serve counters, and
// the process gauges.
func TestMetricsExposition(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/v1/implies", fastImplies)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(b)
	for _, want := range []string{
		`http_latency_us_bucket{path="/v1/implies",le="`,
		`http_latency_us_count{path="/v1/implies"}`,
		`http_requests_total{path="/v1/implies",code="200"} 1`,
		`serve_answers_total{engine="ind",verdict="yes"} 1`,
		`ind_expanded_total`,
		"# TYPE http_latency_us histogram",
		"process_goroutines",
		"process_heap_alloc_bytes",
		"http_in_flight 1", // the /metrics request itself is in flight
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestHealthAndReadiness(t *testing.T) {
	s, _, ts := newTestServer(t, Config{})
	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz = %d, want 200", code)
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Errorf("/readyz = %d, want 200 when ready", code)
	}
	s.SetReady(false)
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz = %d, want 503 when not ready", code)
	}
}

func TestDebugObsAndPprof(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/v1/implies", fastImplies)

	resp, err := http.Get(ts.URL + "/debug/obs")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var snap obs.Snapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatalf("/debug/obs is not a Snapshot: %v\n%s", err, b)
	}
	if len(snap.Spans) == 0 {
		t.Errorf("/debug/obs has no query spans")
	}

	resp, err = http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d, want 200", resp.StatusCode)
	}
}

// TestSlowQueryCounter uses a zero-ish threshold so every request is
// slow, and checks the counter and that normal service continues.
func TestSlowQueryCounter(t *testing.T) {
	_, reg, ts := newTestServer(t, Config{SlowQuery: time.Nanosecond})
	postJSON(t, ts.URL+"/v1/implies", fastImplies)
	if n := reg.Counter("http.slow_requests").Value(); n == 0 {
		t.Errorf("http.slow_requests = 0, want > 0 with a 1ns threshold")
	}
}

func TestRequestIDsDistinct(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})
	r1, _ := postJSON(t, ts.URL+"/v1/implies", fastImplies)
	r2, _ := postJSON(t, ts.URL+"/v1/implies", fastImplies)
	id1, id2 := r1.Header.Get("X-Request-ID"), r2.Header.Get("X-Request-ID")
	if id1 == "" || id1 == id2 {
		t.Errorf("request IDs not distinct: %q vs %q", id1, id2)
	}
}

func TestIndexAndNotFound(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), "/v1/implies") {
		t.Errorf("index page does not list endpoints:\n%s", b)
	}
	resp, err = http.Get(ts.URL + "/no/such/path")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path = %d, want 404", resp.StatusCode)
	}
}

// TestTraceIDHeaderEverywhere pins the contract that every response —
// success, client error, probe, 404 — carries a W3C trace identity: a
// 32-hex X-Trace-Id, a valid traceparent whose trace-id field is that
// same ID, and a separate X-Request-ID, so any response can be
// correlated with logs and (when recorded) resolved at
// /debug/traces/{id}.
func TestTraceIDHeaderEverywhere(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})
	check := func(name string, resp *http.Response) {
		t.Helper()
		tid := resp.Header.Get("X-Trace-Id")
		if len(tid) != 32 || !isLowerHex(tid) {
			t.Errorf("%s: X-Trace-Id %q is not a 32-hex W3C trace ID", name, tid)
		}
		tp := resp.Header.Get("traceparent")
		trace, parent, ok := parseTraceparent(tp)
		if !ok {
			t.Errorf("%s: response traceparent %q does not parse", name, tp)
		} else {
			if trace != tid {
				t.Errorf("%s: traceparent trace-id %q != X-Trace-Id %q", name, trace, tid)
			}
			if len(parent) != 16 || allZero(parent) {
				t.Errorf("%s: traceparent span-id %q invalid", name, parent)
			}
		}
		if rid := resp.Header.Get("X-Request-ID"); rid == "" {
			t.Errorf("%s: missing X-Request-ID header", name)
		}
	}
	resp, _ := postJSON(t, ts.URL+"/v1/implies", fastImplies)
	check("implies 200", resp)
	resp, _ = postJSON(t, ts.URL+"/v1/implies", `{`)
	check("implies 400", resp)
	for _, path := range []string{"/metrics", "/healthz", "/readyz", "/debug/traces", "/no/such/path", "/"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		check(path, r)
	}
}

// tracesPayload is the /debug/traces response shape.
type tracesPayload struct {
	Capacity int                  `json:"capacity"`
	Traces   []*obs.RequestRecord `json:"traces"`
}

// TestDebugTraces drives queries through the server and wants the
// flight recorder to serve them back: newest first, with the query's
// identity, outcome, and span tree; an X-Trace-Id from a live response
// must resolve at /debug/traces/{id} to that request's record.
func TestDebugTraces(t *testing.T) {
	_, _, ts := newTestServer(t, Config{TraceBuffer: 16})
	resp1, _ := postJSON(t, ts.URL+"/v1/implies", fastImplies)
	tid := resp1.Header.Get("X-Trace-Id")
	if tid == "" {
		t.Fatal("no X-Trace-Id on the query response")
	}
	// Probes must not flood the recorder.
	for i := 0; i < 3; i++ {
		r, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}

	r, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(r.Body)
	r.Body.Close()
	var got tracesPayload
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("/debug/traces: %v\n%s", err, b)
	}
	if got.Capacity < 16 {
		t.Errorf("capacity = %d, want >= 16", got.Capacity)
	}
	var rec *obs.RequestRecord
	for _, tr := range got.Traces {
		if tr.Route == "/healthz" || tr.Route == "/readyz" {
			t.Errorf("probe %s recorded in the flight recorder", tr.Route)
		}
		if tr.TraceID == tid {
			rec = tr
		}
	}
	if rec == nil {
		t.Fatalf("query trace %s not in /debug/traces:\n%s", tid, b)
	}
	if rec.Route != "/v1/implies" || rec.Status != http.StatusOK {
		t.Errorf("record route/status = %s/%d", rec.Route, rec.Status)
	}
	if rec.Verdict != "yes" || rec.Engine != "ind" || rec.Goal == "" {
		t.Errorf("record query fields = %+v", rec)
	}
	if rec.DurationNS <= 0 {
		t.Errorf("record duration = %d", rec.DurationNS)
	}
	if rec.Trace == nil || rec.Trace.Name == "" {
		t.Errorf("record has no span tree: %+v", rec.Trace)
	}

	// The exemplar round trip: the ID resolves individually too.
	r, err = http.Get(ts.URL + "/debug/traces/" + tid)
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces/%s = %d:\n%s", tid, r.StatusCode, b)
	}
	var one obs.RequestRecord
	if err := json.Unmarshal(b, &one); err != nil {
		t.Fatalf("unmarshal single trace: %v", err)
	}
	if one.TraceID != tid || one.Verdict != "yes" {
		t.Errorf("single trace = %+v, want the query record", one)
	}
	// Unknown and evicted IDs are 404; a bad limit is 400.
	if r, _ = http.Get(ts.URL + "/debug/traces/nope"); r.StatusCode != http.StatusNotFound {
		t.Errorf("/debug/traces/nope = %d, want 404", r.StatusCode)
	}
	r.Body.Close()
	if r, _ = http.Get(ts.URL + "/debug/traces?limit=bogus"); r.StatusCode != http.StatusBadRequest {
		t.Errorf("limit=bogus = %d, want 400", r.StatusCode)
	}
	r.Body.Close()
	if r, _ = http.Get(ts.URL + "/debug/traces?limit=1"); true {
		b, _ = io.ReadAll(r.Body)
		r.Body.Close()
		var lim tracesPayload
		if err := json.Unmarshal(b, &lim); err != nil || len(lim.Traces) != 1 {
			t.Errorf("limit=1 returned %d traces (err %v)", len(lim.Traces), err)
		}
	}
}

// TestDebugTracesExemplarLink checks the metrics side of the round
// trip: after a query, the latency histogram's bucket exemplar is a
// trace ID the recorder can resolve.
func TestDebugTracesExemplarLink(t *testing.T) {
	s, reg, ts := newTestServer(t, Config{TraceBuffer: 16})
	postJSON(t, ts.URL+"/v1/implies", fastImplies)
	var exemplar string
	for name, h := range reg.Snapshot().Histograms {
		if !strings.HasPrefix(name, "http.latency_us") || !strings.Contains(name, "/v1/implies") {
			continue
		}
		for _, b := range h.Buckets {
			if b.Exemplar != "" {
				exemplar = b.Exemplar
			}
		}
	}
	if exemplar == "" {
		t.Fatal("latency histogram has no exemplar after a query")
	}
	rec := s.rec.Get(exemplar)
	if rec == nil {
		t.Fatalf("exemplar %q does not resolve in the flight recorder", exemplar)
	}
	if rec.Route != "/v1/implies" {
		t.Errorf("exemplar resolved to route %s", rec.Route)
	}
}

// TestExplainEndpoint posts a mixed FD+IND goal to /v1/explain and
// wants a chase answer that carries its provenance derivation DAG:
// seed leaves, rule-firing internal nodes, and a non-empty rendered
// explanation — without the client having to set explain/provenance
// flags itself.
func TestExplainEndpoint(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})
	req := `{
		"schema": ["R(A, B)", "S(A, B)"],
		"sigma": ["R[A,B] <= S[A,B]", "S: A -> B"],
		"goal": "R: A -> B"
	}`
	resp, body := postJSON(t, ts.URL+"/v1/explain", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d; body %s", resp.StatusCode, body)
	}
	var out ImpliesResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, body)
	}
	if out.Verdict != "yes" || out.Engine != "chase" {
		t.Fatalf("verdict/engine = %q/%q, want yes/chase", out.Verdict, out.Engine)
	}
	if out.Explanation == "" {
		t.Errorf("explain endpoint returned no explanation")
	}
	d := out.Derivation
	if d == nil {
		t.Fatalf("no derivation in /v1/explain response:\n%s", body)
	}
	seeds, inds, fds, _ := d.Stats()
	if seeds != 2 || inds == 0 || fds == 0 {
		t.Errorf("derivation stats seeds=%d inds=%d fds=%d, want 2/>0/>0", seeds, inds, fds)
	}
	if len(d.Checks) == 0 {
		t.Errorf("derivation has no goal checks")
	}
	// A pure-IND goal answers via the ind engine: still 200, with the
	// formal proof as the explanation and no derivation.
	resp, body = postJSON(t, ts.URL+"/v1/explain", fastImplies)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ind explain status = %d; body %s", resp.StatusCode, body)
	}
	var out2 ImpliesResponse
	if err := json.Unmarshal(body, &out2); err != nil {
		t.Fatal(err)
	}
	if out2.Engine != "ind" || out2.Explanation == "" || out2.Derivation != nil {
		t.Errorf("ind explain: engine=%q explanation=%d bytes derivation=%v",
			out2.Engine, len(out2.Explanation), out2.Derivation)
	}
}

// TestTraceBufferDisabled turns the recorder off and wants the debug
// endpoints to degrade gracefully rather than 500.
func TestTraceBufferDisabled(t *testing.T) {
	_, _, ts := newTestServer(t, Config{TraceBuffer: -1})
	postJSON(t, ts.URL+"/v1/implies", fastImplies)
	r, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(r.Body)
	r.Body.Close()
	var got tracesPayload
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("disabled recorder /debug/traces: %v\n%s", err, b)
	}
	if got.Capacity != 0 || len(got.Traces) != 0 {
		t.Errorf("disabled recorder returned capacity=%d traces=%d", got.Capacity, len(got.Traces))
	}
	if r, _ = http.Get(ts.URL + "/debug/traces/anything"); r.StatusCode != http.StatusNotFound {
		t.Errorf("disabled recorder trace lookup = %d, want 404", r.StatusCode)
	}
	r.Body.Close()
}
