package serve

import (
	"net/http"
	"strconv"
	"time"

	"indfd/internal/obs/tsdb"
)

// This file is the continuous-telemetry side of the debug surface: the
// shared header discipline every /debug JSON endpoint gets, plus the
// /debug/timeseries and /debug/alerts handlers over the tsdb store and
// watchdog (internal/obs/tsdb).

// debugJSON wraps a /debug handler with the headers every diagnostic
// JSON endpoint must carry: Cache-Control: no-store (these bodies are
// point-in-time process state — a cached copy is a lie within one
// sample tick) and an explicit charset on the Content-Type. Handlers
// behind it may still override (writeJSON re-sets the same
// Content-Type), but the headers exist even on paths that write the
// body directly.
func debugJSON(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Cache-Control", "no-store")
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		h(w, r)
	}
}

// handleTimeseries is GET /debug/timeseries: the tsdb's retained
// history as JSON series. Query parameters:
//
//	since=5m        drop points older than this (Go duration back from
//	                now, or absolute unix seconds); reaching past the
//	                fine retention serves the coarse downsampled tier
//	step=30s        re-aggregate points into coarser buckets
//	match=http_lat  keep only series whose name contains the substring
//
// With history off (-ts-resolution 0) the reply is {"enabled": false}.
func (s *Server) handleTimeseries(w http.ResponseWriter, r *http.Request) {
	if s.ts == nil {
		s.writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	q := r.URL.Query()
	opt := tsdb.QueryOptions{Match: q.Get("match")}
	if raw := q.Get("since"); raw != "" {
		if d, err := time.ParseDuration(raw); err == nil {
			opt.Since = time.Now().Add(-d)
		} else if sec, err := strconv.ParseInt(raw, 10, 64); err == nil {
			opt.Since = time.Unix(sec, 0)
		} else {
			s.writeJSON(w, http.StatusBadRequest, map[string]string{
				"request_id": RequestID(r.Context()),
				"error":      "since must be a duration (5m) or unix seconds",
			})
			return
		}
	}
	if raw := q.Get("step"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d <= 0 {
			s.writeJSON(w, http.StatusBadRequest, map[string]string{
				"request_id": RequestID(r.Context()),
				"error":      "step must be a positive duration",
			})
			return
		}
		opt.Step = d
	}
	series := s.ts.Query(opt)
	if series == nil {
		series = []tsdb.Series{}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"enabled":       true,
		"resolution_ms": s.ts.Resolution().Milliseconds(),
		"retention_ms":  s.ts.Retention().Milliseconds(),
		"series_count":  s.ts.SeriesCount(),
		"series":        series,
	})
}

// handleAlerts is GET /debug/alerts: the watchdog's live state — the
// rule set, currently violating rules (firing, then pending), and the
// bounded fire/resolve event log, newest first (?limit=N bounds it).
// With no watchdog (no -alert-rules, or history off) the reply is
// {"enabled": false}.
func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	if s.wd == nil {
		s.writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	limit := 0
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			s.writeJSON(w, http.StatusBadRequest, map[string]string{
				"request_id": RequestID(r.Context()),
				"error":      "limit must be a non-negative integer",
			})
			return
		}
		limit = n
	}
	active := s.wd.Active()
	if active == nil {
		active = []tsdb.Alert{}
	}
	events := s.wd.Events(limit)
	if events == nil {
		events = []tsdb.AlertEvent{}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"enabled": true,
		"rules":   s.wd.Rules(),
		"active":  active,
		"events":  events,
	})
}
