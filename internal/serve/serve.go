// Package serve is the HTTP layer of depserve, the resident implication
// service: a JSON API over internal/core plus the live observability the
// engines deserve — the decision procedures served here are exactly the
// ones the paper proves can blow up (PSPACE-hard IND implication,
// divergent FD+IND chases), so every request runs under a deadline, is
// tagged with a request ID, logged as structured JSON, and measured into
// a shared obs registry that GET /metrics exposes in the Prometheus text
// format while the process runs.
//
// Endpoints:
//
//	POST /v1/implies    implication query (schema + Σ + goal in the .dep
//	                    text forms), answered by the strongest exact
//	                    engine; 503 with partial stats on deadline
//	POST /v1/explain    implication query answered with its evidence: a
//	                    formal ind/fd proof, the chase's provenance
//	                    derivation DAG, or a counterexample
//	POST /v1/satisfies  satisfaction check of concrete tuples against Σ
//	POST /v1/batch      up to max-batch goals against one inline or
//	                    registered Σ, answered with one shared setup;
//	                    per-goal answers carry cache and timing fields
//	PUT  /v1/schemas/{name}   register a named (schema, Σ) set, pre-
//	                    compiled (parse, canonical Σ, warm engine pool);
//	                    re-PUT bumps the version and surgically evicts
//	                    only cached answers that used a changed member
//	GET  /v1/schemas          list registered schemas
//	GET  /v1/schemas/{name}   current version's schema and Σ
//	DELETE /v1/schemas/{name} remove (version numbers never reused)
//	POST /v1/schemas/{name}/algebra  union/intersect/minimal-cover over
//	                    registered Σ sets
//	GET  /metrics       Prometheus text exposition of the registry
//	GET  /healthz       liveness (always 200 once the mux is up; JSON
//	                    body with uptime and build identity)
//	GET  /readyz        readiness (503 until SetReady(true))
//	GET  /debug/obs     full obs.Snapshot as JSON (counters, gauges,
//	                    histograms, recent query span trees)
//	GET  /debug/otlp    the same telemetry as one OTLP/JSON document
//	                    (resourceSpans from the flight recorder,
//	                    resourceMetrics from the registry)
//	GET  /debug/traces  the flight recorder: last N completed requests
//	                    (span trees, verdicts, cache status), newest
//	                    first; /debug/traces/{id} resolves one trace ID —
//	                    the ID every response's X-Trace-Id header and
//	                    every latency-histogram exemplar carries
//	GET  /debug/digests query-digest analytics: per query shape (the
//	                    canonical fingerprint) the call count, latency
//	                    histogram, error and cache-hit rates, and the
//	                    merged per-dependency cost profile, sorted by
//	                    total engine time
//	GET  /debug/timeseries  retained telemetry history from the tsdb
//	                    ring (per-tick counter deltas, gauge values and
//	                    histogram quantiles; ?since= ?step= ?match=)
//	GET  /debug/alerts  the watchdog: rules, active alerts, and the
//	                    bounded fire/resolve event log
//	GET  /debug/pprof/  net/http/pprof profiles and execution traces
//
// Every request is stamped with W3C trace context: a valid incoming
// traceparent's trace ID is honored (so depserve's spans land in the
// caller's trace), otherwise one is minted; the response carries
// traceparent, an echoed tracestate, and the legacy X-Trace-Id. Every
// error response, including the mux's own 404/405s, is the JSON
// envelope {"error": "..."}.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"indfd/internal/chase"
	"indfd/internal/core"
	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/obs"
	"indfd/internal/obs/tsdb"
	"indfd/internal/parser"
	"indfd/internal/registry"
	"indfd/internal/schema"
)

// Config parameterizes a Server. The zero value of every field has a
// usable default except Reg, which must be non-nil (a metrics-less
// server would defeat the point).
type Config struct {
	// Reg is the shared registry every request's engine work lands in;
	// /metrics and /debug/obs expose it. Callers running a long-lived
	// server should bound its span retention with Reg.SetSpanCap.
	Reg *obs.Registry
	// Logger receives one structured record per request (plus slow-query
	// warnings). Defaults to JSON on stderr.
	Logger *slog.Logger
	// DefaultDeadline bounds a request that does not set timeout_ms
	// (default 10s).
	DefaultDeadline time.Duration
	// MaxDeadline caps the per-request timeout_ms (default 60s).
	MaxDeadline time.Duration
	// SlowQuery is the latency above which a request is logged at Warn
	// level and counted in http.slow_requests (default 500ms).
	SlowQuery time.Duration
	// ChaseBudget is the default chase tuple budget when a request does
	// not set one (0 = the chase package's default).
	ChaseBudget int
	// SearchFallback enables the bounded counterexample search for
	// inconclusive chases unless the request says otherwise.
	SearchFallback bool
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// CacheSize bounds the answer cache (entries); 0 disables caching.
	// Implication answers are pure functions of the request, so a hit is
	// exact, not stale — but only complete answers are stored (a
	// deadline-killed 503 is never cached). Responses carry X-Cache:
	// HIT|MISS when the cache is on.
	CacheSize int
	// CacheTTL expires cached answers after this duration (0 = never).
	// Answers cannot go stale; a TTL only bounds memory held by entries
	// that stopped being asked for.
	CacheTTL time.Duration
	// TraceBuffer is how many completed requests the flight recorder
	// retains for /debug/traces (default 128; negative disables
	// recording).
	TraceBuffer int
	// DigestSize bounds the query-digest store serving /debug/digests:
	// the number of distinct query fingerprints whose workload statistics
	// are retained, admitted by space-saving replacement (default 256;
	// negative disables digests).
	DigestSize int
	// Exporter, when non-nil, receives every completed (non-probe)
	// request record for OTLP export (see obs.NewExporter; depserve
	// builds one from -otlp-file / -otlp-endpoint). The hand-off is one
	// non-blocking channel send: a slow collector drops records (counted
	// in obs.export_dropped), never delays a response.
	Exporter *obs.Exporter
	// Service names the OTLP resource served at /debug/otlp (default
	// "depserve").
	Service string
	// ChaseWorkers shards each chase round's delta scans across this
	// many workers when a pass is large enough (0 or 1 = sequential).
	// Verdicts, traces and counters are bit-identical to the sequential
	// engine at any worker count.
	ChaseWorkers int
	// PoolDisabled turns off cross-request chase-engine pooling. Pooling
	// is on by default: engines are recycled keyed by a (schema, sigma)
	// fingerprint, making warm repeat requests nearly allocation-free
	// (pool.hits/misses/discards count its behavior). Engines from
	// requests killed by deadline or cancellation are discarded, never
	// reused.
	PoolDisabled bool
	// MaxBatch caps the number of goals in one POST /v1/batch body
	// (default 256).
	MaxBatch int
	// BatchFanout bounds the worker group a batch's goals fan across
	// (default GOMAXPROCS). A request's fanout field can lower it per
	// batch, never raise it.
	BatchFanout int
	// TSDB, when non-nil, serves GET /debug/timeseries: the in-process
	// time-series history the depserve sampler loop feeds (see
	// internal/obs/tsdb). The server only reads it; the caller owns the
	// sampling ticker.
	TSDB *tsdb.Store
	// Watchdog, when non-nil, serves GET /debug/alerts and degrades
	// /readyz while critical alerts fire. The caller owns its
	// evaluation ticker (alongside the TSDB sampler).
	Watchdog *tsdb.Watchdog
}

// Server answers implication traffic over HTTP. Create with New; the
// instrumented handler comes from Handler.
type Server struct {
	cfg     Config
	reg     *obs.Registry
	log     *slog.Logger
	handler http.Handler
	ready   atomic.Bool
	nextID  atomic.Uint64
	idBase  string
	started time.Time
	cache   *core.AnswerCache
	rec     *obs.Recorder
	exp     *obs.Exporter
	dig     *obs.DigestStore
	pool    *chase.EnginePool
	schemas *registry.Registry
	ts      *tsdb.Store
	wd      *tsdb.Watchdog

	gInFlight     *obs.Gauge
	cSlow         *obs.Counter
	cDeadline     *obs.Counter
	cTraceHonored *obs.Counter
	cTraceMinted  *obs.Counter
	cRequests     *obs.Counter
	cErrors       *obs.Counter
	hLatency      *obs.Histogram

	// testDelayNS, when positive, sleeps every instrumented request by
	// that many nanoseconds before the handler runs — the latency-fault
	// injector the watchdog integration test flips while traffic flies
	// (an atomic, so flipping it mid-run is race-clean). Never set in
	// production.
	testDelayNS atomic.Int64
}

// New builds a Server. It panics when cfg.Reg is nil — the server
// exists to expose metrics, so an instrumentation-off server is a
// programming error, not a configuration.
func New(cfg Config) *Server {
	if cfg.Reg == nil {
		panic("serve: Config.Reg must be non-nil")
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	if cfg.DefaultDeadline <= 0 {
		cfg.DefaultDeadline = 10 * time.Second
	}
	if cfg.MaxDeadline <= 0 {
		cfg.MaxDeadline = 60 * time.Second
	}
	if cfg.SlowQuery <= 0 {
		cfg.SlowQuery = 500 * time.Millisecond
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.TraceBuffer == 0 {
		cfg.TraceBuffer = 128
	}
	if cfg.DigestSize == 0 {
		cfg.DigestSize = 256
	}
	if cfg.Service == "" {
		cfg.Service = "depserve"
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	if cfg.BatchFanout <= 0 {
		cfg.BatchFanout = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		cfg:           cfg,
		reg:           cfg.Reg,
		log:           cfg.Logger,
		started:       time.Now(),
		gInFlight:     cfg.Reg.Gauge("http.in_flight"),
		cSlow:         cfg.Reg.Counter("http.slow_requests"),
		cDeadline:     cfg.Reg.Counter("serve.deadline_exceeded"),
		cTraceHonored: cfg.Reg.Counter("http.traceparent_honored"),
		cTraceMinted:  cfg.Reg.Counter("http.traceparent_minted"),
		cRequests:     cfg.Reg.Counter("serve.requests_total"),
		cErrors:       cfg.Reg.Counter("serve.errors_total"),
		hLatency:      cfg.Reg.Histogram("serve.http_latency"),
		ts:            cfg.TSDB,
		wd:            cfg.Watchdog,
		cache:         core.NewAnswerCache(cfg.CacheSize, cfg.CacheTTL, cfg.Reg),
		rec:           obs.NewRecorder(cfg.TraceBuffer),
		exp:           cfg.Exporter,
		dig:           obs.NewDigestStore(cfg.DigestSize, cfg.Reg),
		schemas:       registry.New(cfg.Reg),
	}
	s.idBase = fmt.Sprintf("%x", s.started.UnixNano()&0xfffffff)
	if !cfg.PoolDisabled {
		s.pool = chase.NewEnginePool(cfg.Reg)
	}

	mux := http.NewServeMux()
	mux.Handle("POST /v1/implies", s.instrument("/v1/implies", s.handleImplies))
	mux.Handle("POST /v1/explain", s.instrument("/v1/explain", s.handleExplain))
	mux.Handle("POST /v1/satisfies", s.instrument("/v1/satisfies", s.handleSatisfies))
	mux.Handle("POST /v1/batch", s.instrument("/v1/batch", s.handleBatch))
	mux.Handle("GET /v1/schemas", s.instrument("/v1/schemas", s.handleSchemaList))
	mux.Handle("PUT /v1/schemas/{name}", s.instrument("/v1/schemas/{name}", s.handleSchemaPut))
	mux.Handle("GET /v1/schemas/{name}", s.instrument("/v1/schemas/{name}", s.handleSchemaGet))
	mux.Handle("DELETE /v1/schemas/{name}", s.instrument("/v1/schemas/{name}", s.handleSchemaDelete))
	mux.Handle("POST /v1/schemas/{name}/algebra", s.instrument("/v1/schemas/{name}/algebra", s.handleSchemaAlgebra))
	mux.Handle("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	mux.Handle("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	mux.Handle("GET /readyz", s.instrument("/readyz", s.handleReadyz))
	// Every JSON /debug endpoint goes through debugJSON (debug.go):
	// Cache-Control: no-store plus an explicit Content-Type charset,
	// uniformly — diagnostic bodies must never come back from a cache.
	mux.Handle("GET /debug/obs", s.instrument("/debug/obs", debugJSON(s.handleObs)))
	mux.Handle("GET /debug/otlp", s.instrument("/debug/otlp", debugJSON(s.handleOTLP)))
	mux.Handle("GET /debug/traces", s.instrument("/debug/traces", debugJSON(s.handleTraces)))
	mux.Handle("GET /debug/traces/{id}", s.instrument("/debug/traces/{id}", debugJSON(s.handleTrace)))
	mux.Handle("GET /debug/digests", s.instrument("/debug/digests", debugJSON(s.handleDigests)))
	mux.Handle("GET /debug/timeseries", s.instrument("/debug/timeseries", debugJSON(s.handleTimeseries)))
	mux.Handle("GET /debug/alerts", s.instrument("/debug/alerts", debugJSON(s.handleAlerts)))
	mux.Handle("GET /debug/pprof/", s.instrument("/debug/pprof", pprof.Index))
	mux.Handle("GET /debug/pprof/cmdline", s.instrument("/debug/pprof", pprof.Cmdline))
	mux.Handle("GET /debug/pprof/profile", s.instrument("/debug/pprof", pprof.Profile))
	mux.Handle("GET /debug/pprof/symbol", s.instrument("/debug/pprof", pprof.Symbol))
	mux.Handle("GET /debug/pprof/trace", s.instrument("/debug/pprof", pprof.Trace))
	mux.Handle("GET /", s.instrument("/", s.handleIndex))
	// The envelope goes outside the mux so the mux's own 404/405
	// responses (unknown paths, wrong methods) come back JSON too.
	s.handler = jsonErrors(mux)
	return s
}

// Handler returns the instrumented mux.
func (s *Server) Handler() http.Handler { return s.handler }

// Recorder returns the server's flight recorder (nil when TraceBuffer
// is negative). depserve hands it to the watchdog so alert transitions
// interleave with request traces at /debug/traces.
func (s *Server) Recorder() *obs.Recorder { return s.rec }

// SetReady flips the /readyz verdict; depserve arms it once the
// listener is bound.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// --- request/response types -------------------------------------------------

// ImpliesRequest is the POST /v1/implies body. Schema entries use the
// .dep scheme form without the "schema " keyword ("R(A, B)"); sigma and
// goal use the .dep dependency forms ("R[A] <= S[B]", "R: A -> B",
// "R[A == B]").
type ImpliesRequest struct {
	Schema []string `json:"schema"`
	Sigma  []string `json:"sigma"`
	// SchemaName answers against a registered schema (PUT /v1/schemas/
	// {name}) instead of an inline one: the pre-compiled entry supplies
	// the scheme, Σ and a warm engine pool, so the request body carries
	// only the goal. Mutually exclusive with Schema/Sigma.
	SchemaName string `json:"schema_name,omitempty"`
	Goal       string `json:"goal"`
	// Finite asks for finite implication (⊨fin) instead of unrestricted.
	Finite bool `json:"finite,omitempty"`
	// Budget overrides the server's chase tuple budget for this query.
	Budget int `json:"budget,omitempty"`
	// Search enables the bounded counterexample-search fallback.
	Search bool `json:"search,omitempty"`
	// TimeoutMS lowers (or raises, up to the server cap) the deadline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Explain adds the engine's explanation (derivation, cardinality
	// cycle, or counterexample) to the response.
	Explain bool `json:"explain,omitempty"`
	// Provenance makes the chase record provenance and return a
	// derivation DAG on yes verdicts. POST /v1/explain forces both
	// Explain and Provenance on.
	Provenance bool `json:"provenance,omitempty"`
	// IncludeMetrics attaches this request's metric deltas (a
	// Snapshot.Diff of the shared registry around the query; best-effort
	// under concurrent traffic).
	IncludeMetrics bool `json:"include_metrics,omitempty"`
	// Profile attributes the engine's work — firings, tuples, scan time —
	// to individual members of sigma and returns the attribution as
	// dep_profile. Like include_metrics it describes this request's
	// engine work, so profiled requests bypass the answer cache.
	Profile bool `json:"profile,omitempty"`
}

// INDStats mirrors ind.Stats with JSON names.
type INDStats struct {
	Expanded     int `json:"expanded"`
	Generated    int `json:"generated"`
	Visited      int `json:"visited"`
	FrontierPeak int `json:"frontier_peak"`
	ChainLength  int `json:"chain_length,omitempty"`
}

// ImpliesResponse is the POST /v1/implies reply. On a 503 deadline the
// verdict is "unknown" and the chase/IND stats hold the partial work
// done before the deadline hit.
type ImpliesResponse struct {
	RequestID      string `json:"request_id"`
	Goal           string `json:"goal,omitempty"`
	Mode           string `json:"mode,omitempty"`
	Verdict        string `json:"verdict,omitempty"`
	Engine         string `json:"engine,omitempty"`
	Proof          string `json:"proof,omitempty"`
	Explanation    string `json:"explanation,omitempty"`
	Counterexample string `json:"counterexample,omitempty"`
	// Derivation is the chase's proof DAG (leaves: seed tuples; internal
	// nodes: FD/IND/RD firings), present on chase yes verdicts when the
	// request asked for provenance.
	Derivation  *chase.Derivation `json:"derivation,omitempty"`
	ChaseRounds int               `json:"chase_rounds,omitempty"`
	ChaseTuples int               `json:"chase_tuples,omitempty"`
	IND         *INDStats         `json:"ind,omitempty"`
	// DepProfile is the per-dependency cost attribution, present when the
	// request set profile and the engine that ran supports it (chase and
	// the IND search). Entries are hottest-first.
	DepProfile *obs.DepProfile `json:"dep_profile,omitempty"`
	ElapsedUS  int64           `json:"elapsed_us"`
	DeadlineMS int64           `json:"deadline_ms,omitempty"`
	Metrics    *obs.Snapshot   `json:"metrics,omitempty"`
	Error      string          `json:"error,omitempty"`
}

// SatisfiesRequest is the POST /v1/satisfies body: a concrete database
// (rows per relation) checked against Σ.
type SatisfiesRequest struct {
	Schema []string              `json:"schema"`
	Sigma  []string              `json:"sigma"`
	Data   map[string][][]string `json:"data"`
}

// SatisfiesResponse is the POST /v1/satisfies reply.
type SatisfiesResponse struct {
	RequestID string `json:"request_id"`
	Satisfied bool   `json:"satisfied"`
	Violated  string `json:"violated,omitempty"`
	ElapsedUS int64  `json:"elapsed_us"`
	Error     string `json:"error,omitempty"`
}

// --- handlers ---------------------------------------------------------------

func (s *Server) handleImplies(w http.ResponseWriter, r *http.Request) {
	var req ImpliesRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	s.answerImplies(w, r, req)
}

// handleExplain is POST /v1/explain: the same request and response
// shapes as /v1/implies, with Explain and Provenance forced on — the
// response always carries the engine's evidence (a formal ind/fd proof,
// the chase's derivation DAG, the unary engine's cardinality cycle, or
// a counterexample) alongside the verdict.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req ImpliesRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	req.Explain = true
	req.Provenance = true
	s.answerImplies(w, r, req)
}

// prepared is one request's shared setup — the system, the engine pool,
// and the parsed goals — paid once and reused by every goal. For
// /v1/implies that is one goal; for /v1/batch it is the whole point:
// the parse/canonicalize/validate pass and (for registered schemas) the
// compiled system amortize across up to MaxBatch goals.
type prepared struct {
	sys   *core.System
	pool  *chase.EnginePool
	goals []deps.Dependency
	// schemaName and version identify the registry entry when the
	// request referenced one ("" / 0 for inline schemas).
	schemaName string
	version    int64
}

// prepare resolves a request's schema into a ready system and parses
// its goals. With schemaName set the registry supplies the pre-compiled
// entry (schema, canonical Σ, warm pool) and only the goals are parsed,
// against the entry's schema; otherwise the inline schema+Σ+goals
// document is parsed and validated in one pass.
func (s *Server) prepare(schemaName string, schemaLines, sigma, goals []string, finite bool) (*prepared, error) {
	for _, g := range goals {
		if g == "" {
			return nil, errors.New("missing goal")
		}
	}
	if schemaName != "" {
		if len(schemaLines) > 0 || len(sigma) > 0 {
			return nil, errors.New("schema_name and inline schema/sigma are mutually exclusive")
		}
		e, ok := s.schemas.Get(schemaName)
		if !ok {
			return nil, fmt.Errorf("schema %q is not registered", schemaName)
		}
		file, err := parser.ParseString(goalDocument(e.DB, goals, finite))
		if err != nil {
			return nil, err
		}
		if len(file.Queries) != len(goals) || len(file.TDQueries) != 0 {
			return nil, errors.New("every goal must be a single FD, IND or RD")
		}
		p := &prepared{sys: e.Sys, pool: e.Pool, schemaName: e.Name, version: e.Version}
		for _, q := range file.Queries {
			p.goals = append(p.goals, q.Goal)
		}
		return p, nil
	}
	file, err := parser.ParseString(depDocument(schemaLines, sigma, goals, finite))
	if err != nil {
		return nil, err
	}
	if len(file.Queries) != len(goals) || len(file.TDQueries) != 0 {
		return nil, errors.New("every goal must be a single FD, IND or RD")
	}
	sys := core.NewSystem(file.DB)
	if err := sys.Add(file.Sigma...); err != nil {
		return nil, err
	}
	p := &prepared{sys: sys, pool: s.pool}
	for _, q := range file.Queries {
		p.goals = append(p.goals, q.Goal)
	}
	return p, nil
}

// requestDeadline resolves a request's timeout_ms against the server's
// default and cap.
func (s *Server) requestDeadline(timeoutMS int64) time.Duration {
	deadline := s.cfg.DefaultDeadline
	if timeoutMS > 0 {
		deadline = time.Duration(timeoutMS) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	return deadline
}

// solveGoal answers one goal against a prepared system — the single
// engine path behind /v1/implies, /v1/explain and every goal of a
// /v1/batch, so batch answers are byte-identical to per-request ones by
// construction. It returns the response body, its HTTP status, and the
// cache disposition ("hit", "miss", or "" when the goal bypassed the
// cache). Each call observes its own per-goal digest, so /debug/digests
// aggregates batch traffic per query shape, not per batch envelope.
func (s *Server) solveGoal(ctx context.Context, p *prepared, goal deps.Dependency, req ImpliesRequest, requestID string, rec *obs.RequestRecord, deadlineMS int64) (ImpliesResponse, int, string) {
	resp := ImpliesResponse{RequestID: requestID, Goal: goal.String(), Mode: "unrestricted", DeadlineMS: deadlineMS}
	if req.Finite {
		resp.Mode = "finite"
	}
	if rec != nil {
		rec.Goal = resp.Goal
		rec.Mode = resp.Mode
	}
	budget := req.Budget
	if budget <= 0 {
		budget = s.cfg.ChaseBudget
	}
	opt := core.Options{
		ChaseMaxTuples: budget,
		SearchFallback: req.Search || s.cfg.SearchFallback,
		Provenance:     req.Provenance,
		Profile:        req.Profile,
		Obs:            s.reg,
		Ctx:            ctx,
		ChaseWorkers:   s.cfg.ChaseWorkers,
		ChasePool:      p.pool,
	}

	// Answer cache: the answer is a pure function of (schema,
	// Relevant(goal), goal, mode, engine budgets) — core restricts Σ to
	// the goal's IND-connected component before dispatch — so the key
	// binds that component, not all of Σ: editing or registering members
	// outside it leaves every such key warm. Metrics-carrying and
	// profiled requests bypass the cache — their deltas and attributions
	// describe this request's engine work, and a cached answer has none.
	// The fingerprint doubles as the query-digest key (a profile flag is
	// deliberately NOT part of it, so profiled and unprofiled spellings
	// of one query land in one digest), so it is computed whenever
	// either consumer is on.
	var fingerprint string
	cacheable := s.cache != nil && !req.IncludeMetrics && !req.Profile
	cacheStatus := ""
	if cacheable || s.dig != nil {
		fingerprint = p.sys.QueryKey(goal, resp.Mode,
			append(core.FingerprintOptions(opt), "explain="+strconv.FormatBool(req.Explain))...)
	}
	if cacheable {
		// Footprint capture (which members the chase touched) feeds the
		// cache's per-member invalidation index; it is cheap (no scan
		// timers) and never changes the answer.
		opt.Footprint = true
		cacheStatus = "miss"
		lookup := time.Now()
		if hit, ok := s.cache.Get(fingerprint); ok {
			fillAnswer(&resp, hit.Answer)
			resp.Explanation = hit.Explanation
			resp.ElapsedUS = time.Since(lookup).Microseconds()
			if rec != nil {
				rec.Cache = "hit"
				rec.Verdict = resp.Verdict
				rec.Engine = resp.Engine
			}
			s.dig.Observe(obs.DigestObservation{
				Fingerprint: fingerprint, Query: resp.Goal,
				DurationNS: resp.ElapsedUS * 1e3, CacheHit: true,
			})
			s.reg.Counter(obs.MetricName("serve.answers",
				"engine", hit.Answer.Engine, "verdict", hit.Answer.Verdict.String())).Inc()
			return resp, http.StatusOK, "hit"
		}
		if rec != nil {
			rec.Cache = "miss"
		}
	}

	var before *obs.Snapshot
	if req.IncludeMetrics {
		before = s.reg.Snapshot()
	}
	start := time.Now()
	var a core.Answer
	var why string
	var err error
	if req.Explain {
		a, why, err = p.sys.Explain(goal, opt, req.Finite)
	} else if req.Finite {
		a, err = p.sys.ImpliesFinite(goal, opt)
	} else {
		a, err = p.sys.Implies(goal, opt)
	}
	resp.ElapsedUS = time.Since(start).Microseconds()
	fillAnswer(&resp, a)
	resp.Explanation = why
	if req.IncludeMetrics {
		resp.Metrics = s.reg.Snapshot().Diff(before)
	}
	if rec != nil {
		rec.Verdict = resp.Verdict
		rec.Engine = resp.Engine
		rec.Trace = a.Trace
		rec.DepProfile = a.DepProfile
	}
	observeDigest := func(errOutcome bool) {
		s.dig.Observe(obs.DigestObservation{
			Fingerprint: fingerprint, Query: resp.Goal,
			DurationNS: resp.ElapsedUS * 1e3, Err: errOutcome,
			Profile: a.DepProfile,
		})
	}

	switch {
	case err == nil:
		// Only complete answers enter the cache: budget-killed partials
		// (verdict unknown) and the deadline and error branches below
		// return partial work that must never be replayed
		// to a later client. The tags — the members the answer actually
		// depended on (derivation rules, chase footprint, or all of the
		// relevant scope) — let a registry edit evict exactly the entries
		// it could have changed.
		if cacheable && a.Verdict != core.Unknown {
			s.cache.PutTagged(fingerprint,
				core.CachedAnswer{Answer: a, Explanation: why},
				p.sys.AnswerTags(&a, goal))
		}
		observeDigest(false)
		s.reg.Counter(obs.MetricName("serve.answers",
			"engine", a.Engine, "verdict", a.Verdict.String())).Inc()
		return resp, http.StatusOK, cacheStatus
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		// The engines return their partial work with the error; the 503
		// tells the client the instance, not the server, is the problem —
		// the general FD+IND implication problem is undecidable and this
		// instance outran its deadline.
		s.cDeadline.Inc()
		observeDigest(true)
		s.reg.Counter(obs.MetricName("serve.answers",
			"engine", a.Engine, "verdict", "deadline")).Inc()
		resp.Error = err.Error()
		return resp, http.StatusServiceUnavailable, cacheStatus
	default:
		observeDigest(true)
		resp.Error = err.Error()
		return resp, http.StatusInternalServerError, cacheStatus
	}
}

func (s *Server) answerImplies(w http.ResponseWriter, r *http.Request, req ImpliesRequest) {
	resp := ImpliesResponse{RequestID: RequestID(r.Context())}
	if req.Goal == "" {
		s.badRequest(w, r, resp, "missing goal")
		return
	}
	p, err := s.prepare(req.SchemaName, req.Schema, req.Sigma, []string{req.Goal}, req.Finite)
	if err != nil {
		s.badRequest(w, r, resp, err.Error())
		return
	}
	deadline := s.requestDeadline(req.TimeoutMS)
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()
	// The flight-recorder draft (nil when recording is off) gets the
	// query identity and outcome inside solveGoal; the middleware
	// retains it when the response is done.
	resp, status, cacheStatus := s.solveGoal(ctx, p, p.goals[0], req,
		resp.RequestID, record(r.Context()), deadline.Milliseconds())
	switch cacheStatus {
	case "hit":
		w.Header().Set("X-Cache", "HIT")
	case "miss":
		w.Header().Set("X-Cache", "MISS")
	}
	s.writeJSON(w, status, resp)
}

func (s *Server) handleSatisfies(w http.ResponseWriter, r *http.Request) {
	var req SatisfiesRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	resp := SatisfiesResponse{RequestID: RequestID(r.Context())}
	file, err := parser.ParseString(depDocument(req.Schema, req.Sigma, nil, false))
	if err != nil {
		s.badRequestSat(w, resp, err.Error())
		return
	}
	db := data.NewDatabase(file.DB)
	for rel, rows := range req.Data {
		for _, row := range rows {
			t := make(data.Tuple, len(row))
			for i, v := range row {
				t[i] = data.Value(v)
			}
			if _, err := db.Insert(rel, t); err != nil {
				s.badRequestSat(w, resp, err.Error())
				return
			}
		}
	}
	start := time.Now()
	ok, bad, err := db.SatisfiesAll(file.Sigma)
	resp.ElapsedUS = time.Since(start).Microseconds()
	if err != nil {
		resp.Error = err.Error()
		s.writeJSON(w, http.StatusInternalServerError, resp)
		return
	}
	resp.Satisfied = ok
	if !ok {
		resp.Violated = bad.String()
	}
	s.reg.Counter(obs.MetricName("serve.satisfies", "satisfied", fmt.Sprintf("%t", ok))).Inc()
	s.writeJSON(w, http.StatusOK, resp)
}

// handleMetrics refreshes the process gauges and writes the registry in
// the Prometheus text format. depserve additionally runs
// obs.StartRuntimeSampler so the gauges move between scrapes too.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	obs.SampleRuntime(s.reg)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.Snapshot().WritePrometheus(w); err != nil {
		s.log.Error("metrics exposition failed", "err", err)
	}
}

// handleTraces is GET /debug/traces: the flight recorder's retained
// records, newest first; ?limit=N bounds the reply.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			s.writeJSON(w, http.StatusBadRequest, map[string]string{
				"request_id": RequestID(r.Context()),
				"error":      "limit must be a non-negative integer",
			})
			return
		}
		limit = n
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"capacity": s.rec.Cap(),
		"traces":   s.rec.Recent(limit),
	})
}

// handleTrace is GET /debug/traces/{id}: one trace ID — the value of a
// response's X-Trace-Id header or of a histogram bucket's exemplar —
// resolved to its full record.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec := s.rec.Get(id)
	if rec == nil {
		s.writeJSON(w, http.StatusNotFound, map[string]string{
			"request_id": RequestID(r.Context()),
			"error":      "trace " + id + " not retained (evicted, never recorded, or recording off)",
		})
		return
	}
	s.writeJSON(w, http.StatusOK, rec)
}

// handleDigests is GET /debug/digests: the query-digest store's
// workload summary — one entry per retained query fingerprint, sorted
// by total engine time (the hottest query shapes first), each with call
// counts, error/cache-hit counts, a log₂ latency histogram and the
// merged per-dependency profile of its profiled runs. ?limit=N bounds
// the reply.
func (s *Server) handleDigests(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			s.writeJSON(w, http.StatusBadRequest, map[string]string{
				"request_id": RequestID(r.Context()),
				"error":      "limit must be a non-negative integer",
			})
			return
		}
		limit = n
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"capacity": s.dig.Cap(),
		"digests":  s.dig.Snapshot(limit),
	})
}

func (s *Server) handleObs(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err := s.reg.Snapshot().WriteJSON(w); err != nil {
		s.log.Error("obs snapshot failed", "err", err)
	}
}

// handleOTLP is GET /debug/otlp: the registry snapshot plus the flight
// recorder's retained requests rendered as one OTLP/JSON document
// (resourceSpans + resourceMetrics), the same encoding the exporter
// ships — curl it into any OTLP-ingesting backend or jq it locally.
func (s *Server) handleOTLP(w http.ResponseWriter, r *http.Request) {
	doc := obs.OTLPExport(s.reg.Snapshot(), s.rec.Recent(0),
		obs.OTLPResourceFor(s.cfg.Service), time.Now())
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err := doc.WriteOTLP(w); err != nil {
		s.log.Error("otlp exposition failed", "err", err)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": int64(obs.Uptime().Seconds()),
		"build":          obs.Build(),
	})
}

// handleReadyz is readiness plus health: 503 until the listener is
// bound, then "ready" — unless the watchdog has critical alerts
// firing, in which case the body reports "degraded" with the alert
// names and messages. The status stays 200 while degraded: the
// process is still serving (a latency SLO burn is not a reason for an
// orchestrator to kill the pod), but any probe, dashboard, or deptop
// sees the degradation and its cause immediately.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "starting"})
		return
	}
	if names := s.wd.CriticalNames(); len(names) > 0 {
		alerts := s.wd.Active()
		msgs := make([]string, 0, len(alerts))
		for _, a := range alerts {
			if a.State == "firing" && a.Severity == tsdb.SeverityCritical {
				msgs = append(msgs, a.Message)
			}
		}
		s.writeJSON(w, http.StatusOK, map[string]any{
			"status":   "degraded",
			"alerts":   names,
			"messages": msgs,
		})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	io.WriteString(w, `depserve — implication service for FDs and INDs
POST /v1/implies     {"schema":["R(A,B)"],"sigma":["R: A -> B"],"goal":"R: A -> B"}
POST /v1/explain     same body; answers with proof, derivation DAG, or counterexample
POST /v1/satisfies   {"schema":[...],"sigma":[...],"data":{"R":[["a","b"]]}}
POST /v1/batch       {"schema_name":"orders","goals":["R: A -> B", ...]} — many goals, one setup
PUT  /v1/schemas/{name}   {"schema":[...],"sigma":[...]} — register a pre-compiled named Σ
GET  /v1/schemas          list; GET/DELETE /v1/schemas/{name} inspect/remove
POST /v1/schemas/{name}/algebra  {"op":"union|intersect|minimal-cover","with":"other"}
GET  /metrics        Prometheus text exposition
GET  /healthz        liveness
GET  /readyz         readiness
GET  /debug/obs      metrics + recent query traces as JSON
GET  /debug/otlp     spans + metrics as one OTLP/JSON document
GET  /debug/traces   flight recorder: last N requests (X-Trace-Id resolves at /debug/traces/{id})
GET  /debug/digests  query digests: hottest query shapes by total engine time
GET  /debug/timeseries  retained telemetry history (?since=5m&step=10s&match=substr)
GET  /debug/alerts   watchdog rules, active alerts, fire/resolve event log
GET  /debug/pprof/   profiles
`) //nolint:errcheck
}

// --- helpers ----------------------------------------------------------------

// depDocument assembles a .dep text document from the request's parts;
// nil goals omit the query lines (the satisfies path).
func depDocument(schemaLines, sigma, goals []string, finite bool) string {
	var b strings.Builder
	for _, s := range schemaLines {
		b.WriteString("schema ")
		b.WriteString(s)
		b.WriteByte('\n')
	}
	for _, d := range sigma {
		b.WriteString(d)
		b.WriteByte('\n')
	}
	writeGoals(&b, goals, finite)
	return b.String()
}

// goalDocument renders a goals-only .dep document against a registered
// schema: its scheme declarations (for validation) plus the query
// lines, no Σ — the registry entry already holds the canonical Σ, so a
// batch against a registered schema re-parses nothing but the goals.
func goalDocument(db *schema.Database, goals []string, finite bool) string {
	var b strings.Builder
	for _, n := range db.Names() {
		sch, _ := db.Scheme(n)
		b.WriteString("schema ")
		b.WriteString(sch.String())
		b.WriteByte('\n')
	}
	writeGoals(&b, goals, finite)
	return b.String()
}

func writeGoals(b *strings.Builder, goals []string, finite bool) {
	for _, g := range goals {
		if g == "" {
			continue
		}
		if finite {
			b.WriteString("?fin ")
		} else {
			b.WriteString("? ")
		}
		b.WriteString(g)
		b.WriteByte('\n')
	}
}

// fillAnswer copies a core.Answer (possibly partial, on the deadline
// path) into the response.
func fillAnswer(resp *ImpliesResponse, a core.Answer) {
	resp.Verdict = a.Verdict.String()
	resp.Engine = a.Engine
	resp.Proof = a.Proof
	if a.Counterexample != nil {
		resp.Counterexample = a.Counterexample.String()
	}
	resp.ChaseRounds = a.ChaseRounds
	resp.ChaseTuples = a.ChaseTuples
	resp.Derivation = a.Derivation
	resp.DepProfile = a.DepProfile
	if st := a.INDStats; st != nil {
		resp.IND = &INDStats{
			Expanded:     st.Expanded,
			Generated:    st.Generated,
			Visited:      st.Visited,
			FrontierPeak: st.FrontierPeak,
			ChainLength:  st.ChainLength,
		}
	}
}

// decodeBody reads a bounded JSON body, rejecting unknown fields so
// typos surface as 400s instead of silently ignored options.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]string{
			"request_id": RequestID(r.Context()),
			"error":      "invalid request body: " + err.Error(),
		})
		return false
	}
	return true
}

func (s *Server) badRequest(w http.ResponseWriter, r *http.Request, resp ImpliesResponse, msg string) {
	resp.Error = msg
	s.writeJSON(w, http.StatusBadRequest, resp)
}

func (s *Server) badRequestSat(w http.ResponseWriter, resp SatisfiesResponse, msg string) {
	resp.Error = msg
	s.writeJSON(w, http.StatusBadRequest, resp)
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		s.log.Error("response encoding failed", "err", err)
	}
}
