// POST /v1/batch: many goals, one setup. A batch request answers up to
// Config.MaxBatch goals against a single Σ — inline or registered by
// name — paying the request's fixed costs once: one JSON decode, one
// parse/canonicalize/validate pass (or one registry lookup of a
// pre-compiled entry), one deadline, one fingerprint pass per goal over
// the already-built system. The goals then fan across a bounded worker
// group; every goal runs through the same solveGoal path as a lone
// /v1/implies request, so per-goal answers are byte-identical to what N
// sequential requests would have returned (verdict, trace,
// counterexample), with per-goal cache and timing fields attached.
package serve

import (
	"context"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// BatchRequest is the POST /v1/batch body: the schema fields of an
// ImpliesRequest (inline schema+sigma, or schema_name) with a list of
// goals instead of one, plus the same per-query knobs applied to every
// goal.
type BatchRequest struct {
	Schema     []string `json:"schema,omitempty"`
	Sigma      []string `json:"sigma,omitempty"`
	SchemaName string   `json:"schema_name,omitempty"`
	Goals      []string `json:"goals"`
	Finite     bool     `json:"finite,omitempty"`
	Budget     int      `json:"budget,omitempty"`
	Search     bool     `json:"search,omitempty"`
	TimeoutMS  int64    `json:"timeout_ms,omitempty"`
	Explain    bool     `json:"explain,omitempty"`
	Provenance bool     `json:"provenance,omitempty"`
	// Fanout lowers the server's batch worker bound for this request
	// (0 = use Config.BatchFanout; values above the bound are clamped).
	Fanout int `json:"fanout,omitempty"`
}

// BatchGoalAnswer is one goal's answer: the exact ImpliesResponse a
// lone /v1/implies would have produced, plus the cache disposition the
// X-Cache header would have carried and the HTTP status the response
// would have had (200; 503 for a deadline-killed goal).
type BatchGoalAnswer struct {
	ImpliesResponse
	Cache  string `json:"cache,omitempty"`
	Status int    `json:"status"`
}

// BatchResponse is the POST /v1/batch reply. Answers are in the goals'
// order. The response status is 200 when the batch itself was valid;
// per-goal failures are reported per goal.
type BatchResponse struct {
	RequestID string `json:"request_id"`
	// Schema and Version echo the registry entry the batch ran against,
	// absent for inline schemas. The version is the one the answers were
	// computed from — a concurrent re-registration does not tear a
	// running batch, which keeps using its immutable entry.
	Schema    string            `json:"schema,omitempty"`
	Version   int64             `json:"version,omitempty"`
	Goals     int               `json:"goals"`
	Answers   []BatchGoalAnswer `json:"answers,omitempty"`
	ElapsedUS int64             `json:"elapsed_us"`
	Error     string            `json:"error,omitempty"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	resp := BatchResponse{RequestID: RequestID(r.Context()), Goals: len(req.Goals)}
	bad := func(msg string) {
		resp.Error = msg
		s.writeJSON(w, http.StatusBadRequest, resp)
	}
	if len(req.Goals) == 0 {
		bad("missing goals")
		return
	}
	if len(req.Goals) > s.cfg.MaxBatch {
		bad("too many goals: " + strconv.Itoa(len(req.Goals)) + " > max_batch " + strconv.Itoa(s.cfg.MaxBatch))
		return
	}
	start := time.Now()
	p, err := s.prepare(req.SchemaName, req.Schema, req.Sigma, req.Goals, req.Finite)
	if err != nil {
		bad(err.Error())
		return
	}
	resp.Schema, resp.Version = p.schemaName, p.version

	deadline := s.requestDeadline(req.TimeoutMS)
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	// Per-goal options are the batch's knobs verbatim; solveGoal treats
	// them exactly as a lone request's.
	goalReq := ImpliesRequest{
		Finite: req.Finite, Budget: req.Budget, Search: req.Search,
		Explain: req.Explain, Provenance: req.Provenance,
	}
	fanout := s.cfg.BatchFanout
	if req.Fanout > 0 && req.Fanout < fanout {
		fanout = req.Fanout
	}
	if fanout > len(p.goals) {
		fanout = len(p.goals)
	}
	resp.Answers = make([]BatchGoalAnswer, len(p.goals))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < fanout; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				// The per-goal recorder is nil: the flight recorder keeps
				// one record per HTTP request; per-goal telemetry lands in
				// the digest store (inside solveGoal) instead.
				ir, status, cache := s.solveGoal(ctx, p, p.goals[i], goalReq,
					resp.RequestID, nil, deadline.Milliseconds())
				resp.Answers[i] = BatchGoalAnswer{ImpliesResponse: ir, Cache: cache, Status: status}
			}
		}()
	}
	for i := range p.goals {
		next <- i
	}
	close(next)
	wg.Wait()
	resp.ElapsedUS = time.Since(start).Microseconds()

	if rec := record(r.Context()); rec != nil {
		rec.Goal = "batch:" + strconv.Itoa(len(p.goals)) + " goals"
		rec.Mode = "batch"
	}
	s.reg.Counter("batch.requests").Inc()
	s.reg.Counter("batch.goals").Add(int64(len(p.goals)))
	for i := range resp.Answers {
		if resp.Answers[i].Status != http.StatusOK {
			s.reg.Counter("batch.goal_errors").Inc()
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}
