package indfd

import (
	"strings"
	"testing"

	"indfd/internal/chase"
	"indfd/internal/core"
	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/er"
	"indfd/internal/lint"
	"indfd/internal/maintain"
	"indfd/internal/parser"
)

// The full pipeline: an ER schema is mapped to relations and
// dependencies, rendered to the .dep format, re-parsed, loaded into the
// implication facade, used for design advice, and enforced on live data
// by the maintenance monitor. Every stage feeds the next with no manual
// glue — the "downstream user" workflow the library is built for.
func TestEndToEndPipeline(t *testing.T) {
	// 1. ER design.
	mapped, err := er.Map(er.Schema{
		Entities: []er.Entity{
			{Name: "EMP", Key: []string{"ENO"}, Attrs: []string{"ENAME"}},
			{Name: "DEPT", Key: []string{"DNO"}, Attrs: []string{"DNAME"}},
			{Name: "MGR", Key: []string{"ENO"}},
		},
		Relationships: []er.Relationship{
			{Name: "WORKS_IN", Participants: []string{"EMP", "DEPT"}},
		},
		ISAs: []er.ISA{{Sub: "MGR", Super: "EMP"}},
	})
	if err != nil {
		t.Fatalf("er.Map: %v", err)
	}

	// 2. Render to .dep text and re-parse.
	var b strings.Builder
	for _, name := range mapped.DB.Names() {
		s, _ := mapped.DB.Scheme(name)
		b.WriteString("schema " + s.String() + "\n")
	}
	for _, d := range mapped.Sigma {
		b.WriteString(d.String() + "\n")
	}
	file, err := parser.ParseString(b.String())
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, b.String())
	}
	if len(file.Sigma) != len(mapped.Sigma) {
		t.Fatalf("round trip lost dependencies: %d vs %d", len(file.Sigma), len(mapped.Sigma))
	}

	// 3. Implication through the facade: the ISA composes with the
	// relationship's foreign key.
	sys := core.NewSystem(file.DB)
	if err := sys.Add(file.Sigma...); err != nil {
		t.Fatal(err)
	}
	a, err := sys.Implies(deps.NewIND("MGR", deps.Attrs("ENO"), "EMP", deps.Attrs("ENO")), core.Options{})
	if err != nil || a.Verdict != core.Yes {
		t.Fatalf("ISA not implied: %+v %v", a, err)
	}

	// 4. Design advice runs clean on the generated schema.
	adv, err := lint.Advise(file.DB, file.Sigma, chase.Options{MaxTuples: 256})
	if err != nil {
		t.Fatalf("Advise: %v", err)
	}
	if len(adv.Redundant) != 0 {
		t.Errorf("generated schema should have no redundant dependencies: %v", adv.Redundant)
	}
	if len(adv.Keys["EMP"]) != 1 {
		t.Errorf("EMP keys = %v", adv.Keys["EMP"])
	}

	// 5. Live enforcement: the monitor accepts a consistent history and
	// rejects the violations.
	m, err := maintain.NewMonitor(file.DB, file.Sigma)
	if err != nil {
		t.Fatalf("NewMonitor: %v", err)
	}
	steps := []struct {
		rel  string
		t    data.Tuple
		ok   bool
		note string
	}{
		{"EMP", data.Tuple{"e1", "ann"}, true, "employee"},
		{"DEPT", data.Tuple{"d1", "math"}, true, "department"},
		{"MGR", data.Tuple{"e1"}, true, "manager is an employee"},
		{"MGR", data.Tuple{"e9"}, false, "manager must be an employee (ISA)"},
		{"WORKS_IN", data.Tuple{"e1", "d1"}, true, "assignment"},
		{"WORKS_IN", data.Tuple{"e1", "d9"}, false, "unknown department"},
		{"EMP", data.Tuple{"e1", "bob"}, false, "key conflict"},
	}
	for _, st := range steps {
		err := m.Insert(st.rel, st.t)
		if (err == nil) != st.ok {
			t.Errorf("%s: Insert(%s, %v) error=%v, want ok=%v", st.note, st.rel, st.t, err, st.ok)
		}
	}
	// The monitor's database satisfies everything, by construction.
	ok, bad, err := m.Database().SatisfiesAll(file.Sigma)
	if err != nil || !ok {
		t.Errorf("monitored database violates %v (%v)", bad, err)
	}
	// Deleting the referenced employee is rejected; deleting bottom-up
	// works.
	if err := m.Delete("EMP", data.Tuple{"e1", "ann"}); err == nil {
		t.Errorf("deleting a referenced employee should be rejected")
	}
	for _, st := range []struct {
		rel string
		t   data.Tuple
	}{
		{"WORKS_IN", data.Tuple{"e1", "d1"}},
		{"MGR", data.Tuple{"e1"}},
		{"DEPT", data.Tuple{"d1", "math"}},
		{"EMP", data.Tuple{"e1", "ann"}},
	} {
		if err := m.Delete(st.rel, st.t); err != nil {
			t.Errorf("Delete(%s, %v): %v", st.rel, st.t, err)
		}
	}
	if m.Database().Size() != 0 {
		t.Errorf("database not empty after bottom-up deletion")
	}
}

// The theory pipeline: the paper's Section 6 witness flows through the
// public facade — finite Yes, unrestricted No, with the explanation
// exposing the counting argument.
func TestEndToEndTheorem44ThroughFacade(t *testing.T) {
	file, err := parser.ParseString(`
schema R(A, B)
R: A -> B
R[A] <= R[B]
`)
	if err != nil {
		t.Fatal(err)
	}
	sys := core.NewSystem(file.DB)
	if err := sys.Add(file.Sigma...); err != nil {
		t.Fatal(err)
	}
	goal := deps.NewIND("R", deps.Attrs("B"), "R", deps.Attrs("A"))
	fin, why, err := sys.Explain(goal, core.Options{}, true)
	if err != nil {
		t.Fatal(err)
	}
	unr, _, err := sys.Explain(goal, core.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if fin.Verdict != core.Yes || unr.Verdict != core.No {
		t.Fatalf("Theorem 4.4 gap: finite=%v unrestricted=%v", fin.Verdict, unr.Verdict)
	}
	if !strings.Contains(why, "cardinality cycle") {
		t.Errorf("explanation missing the counting argument:\n%s", why)
	}
}
