//go:build !race

package indfd

// See race_enabled_test.go.
const raceDetectorEnabled = false
