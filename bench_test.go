// Package indfd holds the repository-level benchmark harness: one
// benchmark per experiment of EXPERIMENTS.md (E1–E14), plus the ablation
// benchmarks called out in DESIGN.md. Run with
//
//	go test -bench=. -benchmem
package indfd

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/big"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"indfd/internal/benchws"
	"indfd/internal/chase"
	"indfd/internal/core"
	"indfd/internal/counterex"
	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/emvd"
	"indfd/internal/enum"
	"indfd/internal/fd"
	"indfd/internal/fo"
	"indfd/internal/ind"
	"indfd/internal/lba"
	"indfd/internal/lint"
	"indfd/internal/maintain"
	"indfd/internal/mvd"
	"indfd/internal/obs"
	"indfd/internal/obs/tsdb"
	"indfd/internal/perm"
	"indfd/internal/rules"
	"indfd/internal/schema"
	"indfd/internal/search"
	"indfd/internal/serve"
	"indfd/internal/td"
	"indfd/internal/unary"
)

// --- E1: Theorem 3.1 — the chase-with-zeros construction -----------------

func BenchmarkINDChase(b *testing.B) {
	db := schema.MustDatabase(
		schema.MustScheme("R", "A", "B", "C"),
		schema.MustScheme("S", "D", "E", "F"),
		schema.MustScheme("T", "G", "H", "I"),
	)
	sigma := []deps.IND{
		deps.NewIND("R", deps.Attrs("A", "B", "C"), "S", deps.Attrs("D", "E", "F")),
		deps.NewIND("S", deps.Attrs("E", "D", "F"), "S", deps.Attrs("D", "E", "F")),
		deps.NewIND("S", deps.Attrs("D", "E"), "T", deps.Attrs("G", "H")),
		deps.NewIND("T", deps.Attrs("H", "G", "I"), "T", deps.Attrs("G", "H", "I")),
	}
	goal := deps.NewIND("R", deps.Attrs("A", "B"), "T", deps.Attrs("G", "H"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		implied, _, err := ind.DecideByChase(db, sigma, goal)
		if err != nil || !implied {
			b.Fatalf("chase decision wrong: %v %v", implied, err)
		}
	}
}

// --- E2: Section 3 — superpolynomial decision chains ----------------------

func BenchmarkINDDecisionPermutation(b *testing.B) {
	for _, m := range []int{6, 8, 10, 12} {
		s := perm.Scheme(m)
		db := schema.MustDatabase(s)
		gamma := perm.LandauPermutation(m)
		fm := perm.Landau(m)
		delta := gamma.Pow(new(big.Int).Sub(fm, big.NewInt(1)))
		sigma := []deps.IND{perm.IND(s, gamma)}
		goal := perm.IND(s, delta)
		b.Run(fmt.Sprintf("m=%d/f(m)=%v", m, fm), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := ind.Decide(db, sigma, goal)
				if err != nil || !res.Implied {
					b.Fatalf("decision wrong")
				}
				b.ReportMetric(float64(res.Stats.ChainLength), "chain-steps")
			}
		})
	}
}

// Ablation: the indexed breadth-first search vs the paper's literal
// step-(2) fixpoint loop.
func BenchmarkINDDecisionNaiveVsMemo(b *testing.B) {
	m := 8
	s := perm.Scheme(m)
	db := schema.MustDatabase(s)
	gamma := perm.LandauPermutation(m)
	fm := perm.Landau(m)
	delta := gamma.Pow(new(big.Int).Sub(fm, big.NewInt(1)))
	sigma := []deps.IND{perm.IND(s, gamma)}
	goal := perm.IND(s, delta)
	b.Run("memoBFS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if res, err := ind.Decide(db, sigma, goal); err != nil || !res.Implied {
				b.Fatal("wrong")
			}
		}
	})
	b.Run("naiveLoop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ok, _ := ind.DecideNaive(sigma, goal); !ok {
				b.Fatal("wrong")
			}
		}
	})
}

// --- E3: Theorem 3.3 — the LBA reduction ---------------------------------

func BenchmarkLBAReduction(b *testing.B) {
	for _, n := range []int{2, 3, 4} {
		m := lba.Eraser()
		input := lba.Input("a", n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				inst, err := lba.Reduce(m, input)
				if err != nil {
					b.Fatal(err)
				}
				res, err := ind.Decide(inst.DB, inst.Sigma, inst.Goal)
				if err != nil || !res.Implied {
					b.Fatal("reduction decision wrong")
				}
			}
		})
	}
}

// --- E4/E5: Theorem 4.4 — unary finite implication ------------------------

func BenchmarkFiniteImplicationUnary(b *testing.B) {
	inst := counterex.Fig41()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys, err := unary.New(inst.DB, inst.Sigma)
		if err != nil {
			b.Fatal(err)
		}
		ok, err := sys.ImpliesFinite(inst.Goal)
		if err != nil || !ok {
			b.Fatal("finite implication wrong")
		}
	}
}

// --- E6: Propositions 4.1–4.3 — the FD+IND chase --------------------------

func BenchmarkChaseProp41(b *testing.B) {
	db := schema.MustDatabase(
		schema.MustScheme("R", "X", "Y"),
		schema.MustScheme("S", "T", "U"),
	)
	sigma := []deps.Dependency{
		deps.NewIND("R", deps.Attrs("X", "Y"), "S", deps.Attrs("T", "U")),
		deps.NewFD("S", deps.Attrs("T"), deps.Attrs("U")),
	}
	goal := deps.NewFD("R", deps.Attrs("X"), deps.Attrs("Y"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := chase.ImpliesFD(db, sigma, goal, chase.Options{})
		if err != nil || res.Verdict != chase.Implied {
			b.Fatal("chase wrong")
		}
	}
}

// --- E7: Theorem 5.1 — k-ary closure over a small universe ----------------

func BenchmarkKaryClosure(b *testing.B) {
	var universe []deps.Dependency
	attrs := []string{"A", "B", "C"}
	for _, x := range attrs {
		for _, y := range attrs {
			universe = append(universe, deps.NewFD("R", deps.Attrs(x), deps.Attrs(y)))
		}
	}
	oracle := func(T []deps.Dependency, tau deps.Dependency) (bool, error) {
		var fds []deps.FD
		for _, d := range T {
			fds = append(fds, d.(deps.FD))
		}
		return fd.Implies(fds, tau.(deps.FD)), nil
	}
	gamma := []deps.Dependency{
		deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")),
		deps.NewFD("R", deps.Attrs("B"), deps.Attrs("C")),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := rules.KaryClosure(gamma, universe, oracle, 2)
		if err != nil || !c.Contains(deps.NewFD("R", deps.Attrs("A"), deps.Attrs("C"))) {
			b.Fatal("closure wrong")
		}
	}
}

// --- E8: Theorem 5.3 — the Sagiv–Walecka EMVD chase ------------------------

func BenchmarkEMVDChase(b *testing.B) {
	for _, k := range []int{2, 3} {
		f, err := emvd.SagivWalecka(k)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := emvd.Implies(f.DB, f.Sigma, f.Goal, emvd.Options{})
				if err != nil || res.Verdict != emvd.Implied {
					b.Fatal("EMVD chase wrong")
				}
			}
		})
	}
}

// --- E9: Theorem 6.1 — the Fig 6.1 Armstrong verification ------------------

func BenchmarkSection6Armstrong(b *testing.B) {
	for _, k := range []int{1, 2, 3} {
		s, err := counterex.NewSection6(k)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := s.Verify()
				if err != nil || !rep.Ok() {
					b.Fatal("verification failed")
				}
			}
		})
	}
}

// --- E10: Lemma 7.2 — the Section 7 chase ---------------------------------

func BenchmarkLemma72Chase(b *testing.B) {
	for _, n := range []int{2, 4, 6} {
		s, err := counterex.NewSection7(n)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := s.Lemma72(chase.Options{})
				if err != nil || res.Verdict != chase.Implied {
					b.Fatal("Lemma 7.2 chase wrong")
				}
			}
		})
	}
}

// --- E11/E12: Section 7 — figure construction and verification -------------

func BenchmarkSection7Databases(b *testing.B) {
	s, err := counterex.NewSection7(2)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("figures", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.Fig71(); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Fig72(); err != nil {
				b.Fatal(err)
			}
			s.Fig73()
			if _, err := s.Fig74(0); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Fig75(0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("verify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep, err := s.Verify(chase.Options{})
			if err != nil || !rep.Ok() {
				b.Fatal("verification failed")
			}
		}
	})
}

// --- E13: FD closure (with naive ablation) ---------------------------------

func fdChain(n int) []deps.FD {
	var sigma []deps.FD
	for i := 0; i+1 < n; i++ {
		sigma = append(sigma, deps.NewFD("R",
			deps.Attrs(fmt.Sprintf("A%d", i)), deps.Attrs(fmt.Sprintf("A%d", i+1))))
	}
	return sigma
}

func BenchmarkFDClosure(b *testing.B) {
	for _, n := range []int{50, 200, 800} {
		sigma := fdChain(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := fd.Closure("R", deps.Attrs("A0"), sigma); len(got) != n {
					b.Fatal("closure wrong")
				}
			}
		})
	}
}

func BenchmarkFDClosureNaive(b *testing.B) {
	for _, n := range []int{50, 200, 800} {
		sigma := fdChain(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := fd.ClosureNaive("R", deps.Attrs("A0"), sigma); len(got) != n {
					b.Fatal("closure wrong")
				}
			}
		})
	}
}

// --- E14: polynomial special cases ------------------------------------------

func BenchmarkINDBoundedWidth(b *testing.B) {
	for _, n := range []int{20, 60, 180} {
		var schemes []*schema.Scheme
		for i := 0; i < n; i++ {
			schemes = append(schemes, schema.MustScheme(fmt.Sprintf("R%d", i), "A"))
		}
		db := schema.MustDatabase(schemes...)
		var sigma []deps.IND
		for i := 0; i+1 < n; i++ {
			sigma = append(sigma, deps.NewIND(fmt.Sprintf("R%d", i), deps.Attrs("A"), fmt.Sprintf("R%d", i+1), deps.Attrs("A")))
		}
		goal := deps.NewIND("R0", deps.Attrs("A"), fmt.Sprintf("R%d", n-1), deps.Attrs("A"))
		b.Run(fmt.Sprintf("chain=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := ind.Decide(db, sigma, goal)
				if err != nil || !res.Implied {
					b.Fatal("decision wrong")
				}
			}
		})
	}
}

// --- E15: Armstrong databases for IND sets ---------------------------------

func BenchmarkINDArmstrong(b *testing.B) {
	db := schema.MustDatabase(
		schema.MustScheme("R", "A", "B"),
		schema.MustScheme("S", "C", "D"),
	)
	sigma := []deps.IND{deps.NewIND("R", deps.Attrs("A", "B"), "S", deps.Attrs("C", "D"))}
	universe := enum.INDs(db, enum.Options{MaxWidth: 2})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ind.ArmstrongDatabase(db, sigma, universe); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E16: the extended Maslov translation -----------------------------------

func BenchmarkMaslovInstance(b *testing.B) {
	db := schema.MustDatabase(
		schema.MustScheme("R", "A", "B"),
		schema.MustScheme("S", "C", "D"),
	)
	sigma := []deps.IND{
		deps.NewIND("R", deps.Attrs("A", "B"), "S", deps.Attrs("C", "D")),
		deps.NewIND("S", deps.Attrs("C"), "R", deps.Attrs("B")),
	}
	goal := deps.NewIND("R", deps.Attrs("A"), "R", deps.Attrs("B"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		inst, err := fo.InstanceSentence(db, sigma, goal)
		if err != nil || !inst.InExtendedMaslov() {
			b.Fatal("instance wrong")
		}
	}
}

// Ablation: syntactic (Corollary 3.2 search) vs semantic (Theorem 3.1
// chase) IND decision on the same instance.
func BenchmarkINDDecideVsChase(b *testing.B) {
	m := lba.Eraser()
	inst, err := lba.Reduce(m, lba.Input("a", 3))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("syntactic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := ind.Decide(inst.DB, inst.Sigma, inst.Goal)
			if err != nil || !res.Implied {
				b.Fatal("wrong")
			}
		}
	})
	b.Run("semantic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			implied, _, err := ind.DecideByChase(inst.DB, inst.Sigma, inst.Goal)
			if err != nil || !implied {
				b.Fatal("wrong")
			}
		}
	})
}

// --- toolkit benchmarks: lint, template dependencies, search ----------------

func BenchmarkLintAdvise(b *testing.B) {
	ds := schema.MustDatabase(
		schema.MustScheme("CUST", "CID", "NAME"),
		schema.MustScheme("ORD", "OID", "CID"),
		schema.MustScheme("INV", "OID", "BILLCID", "SHIPCID"),
	)
	sigma := []deps.Dependency{
		deps.NewFD("CUST", deps.Attrs("CID"), deps.Attrs("NAME")),
		deps.NewFD("ORD", deps.Attrs("OID"), deps.Attrs("CID")),
		deps.NewIND("ORD", deps.Attrs("CID"), "CUST", deps.Attrs("CID")),
		deps.NewIND("INV", deps.Attrs("OID", "BILLCID"), "ORD", deps.Attrs("OID", "CID")),
		deps.NewIND("INV", deps.Attrs("OID", "SHIPCID"), "ORD", deps.Attrs("OID", "CID")),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		adv, err := lint.Advise(ds, sigma, chase.Options{MaxTuples: 256})
		if err != nil || len(adv.DerivedRDs) == 0 {
			b.Fatal("advice wrong")
		}
	}
}

func BenchmarkTDChaseSagivWalecka(b *testing.B) {
	f, err := emvd.SagivWalecka(2)
	if err != nil {
		b.Fatal(err)
	}
	var sigma []td.TD
	for _, e := range f.Sigma {
		t, err := td.FromEMVD(f.DB, e)
		if err != nil {
			b.Fatal(err)
		}
		sigma = append(sigma, t)
	}
	goal, err := td.FromEMVD(f.DB, f.Goal)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := td.Implies(f.DB, sigma, goal, td.Options{})
		if err != nil || res.Verdict != td.Implied {
			b.Fatal("TD chase wrong")
		}
	}
}

func BenchmarkSearchCounterexample(b *testing.B) {
	db := schema.MustDatabase(schema.MustScheme("R", "A", "B"))
	sigma := []deps.Dependency{deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B"))}
	goal := deps.NewFD("R", deps.Attrs("B"), deps.Attrs("A"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, found, err := search.Counterexample(db, sigma, goal, search.Options{Domain: 2, MaxTuples: 3})
		if err != nil || !found {
			b.Fatal("search wrong")
		}
	}
}

func BenchmarkMaintainInsert(b *testing.B) {
	ds := schema.MustDatabase(
		schema.MustScheme("CUST", "CID", "NAME"),
		schema.MustScheme("ORD", "OID", "CID"),
	)
	sigma := []deps.Dependency{
		deps.NewFD("CUST", deps.Attrs("CID"), deps.Attrs("NAME")),
		deps.NewIND("ORD", deps.Attrs("CID"), "CUST", deps.Attrs("CID")),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := maintain.NewMonitor(ds, sigma)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 100; j++ {
			cid := data.Value(fmt.Sprintf("c%d", j))
			if err := m.Insert("CUST", data.Tuple{cid, "n"}); err != nil {
				b.Fatal(err)
			}
			if err := m.Insert("ORD", data.Tuple{data.Value(fmt.Sprintf("o%d", j)), cid}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- classical FD+MVD engine -------------------------------------------------

func BenchmarkMVDChase(b *testing.B) {
	s := schema.MustScheme("R", "A", "B", "C", "D", "E")
	sigma := mvd.Sigma{
		Scheme: s,
		FDs:    []deps.FD{deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B"))},
		MVDs: []mvd.MVD{
			mvd.New("R", deps.Attrs("A"), deps.Attrs("C")),
			mvd.New("R", deps.Attrs("B"), deps.Attrs("D")),
		},
	}
	goal := mvd.New("R", deps.Attrs("A"), deps.Attrs("D", "E"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sigma.Implies(goal); err != nil {
			b.Fatal(err)
		}
	}
}

// --- workload sweep: IND decision across instance sizes ---------------------

// syntheticINDs builds a layered random-ish IND workload: rels relations
// of the given width, with chains plus cross-links, deterministic in its
// parameters.
func syntheticINDs(rels, width, extra int) (*schema.Database, []deps.IND, deps.IND) {
	var schemes []*schema.Scheme
	attrs := make([]schema.Attribute, width)
	for i := range attrs {
		attrs[i] = schema.Attribute(fmt.Sprintf("A%d", i))
	}
	names := make([]string, rels)
	for i := range names {
		names[i] = fmt.Sprintf("R%d", i)
		schemes = append(schemes, schema.MustScheme(names[i], attrs...))
	}
	db := schema.MustDatabase(schemes...)
	var sigma []deps.IND
	for i := 0; i+1 < rels; i++ {
		sigma = append(sigma, deps.NewIND(names[i], attrs, names[i+1], attrs))
	}
	// Cross-links with rotated columns.
	rot := append(append([]schema.Attribute(nil), attrs[1:]...), attrs[0])
	for i := 0; i < extra; i++ {
		from := (i * 7) % rels
		to := (i*13 + 3) % rels
		sigma = append(sigma, deps.NewIND(names[from], attrs, names[to], rot))
	}
	goal := deps.NewIND(names[0], attrs[:1], names[rels-1], attrs[:1])
	return db, sigma, goal
}

func BenchmarkINDDecisionSweep(b *testing.B) {
	for _, cfg := range []struct{ rels, width, extra int }{
		{8, 3, 4}, {16, 4, 8}, {32, 5, 16}, {64, 6, 32},
	} {
		db, sigma, goal := syntheticINDs(cfg.rels, cfg.width, cfg.extra)
		b.Run(fmt.Sprintf("rels=%d/width=%d/inds=%d", cfg.rels, cfg.width, len(sigma)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := ind.Decide(db, sigma, goal)
				if err != nil || !res.Implied {
					b.Fatal("sweep decision wrong")
				}
			}
		})
	}
}

// --- hot-path benchmarks: IND frontier and exhaustive search ----------------

// BenchmarkINDDecide tracks the Corollary 3.2 frontier on the two
// adversarial families the paper supplies: the Lemma 3.2 superpolynomial
// chain family (Landau permutations; chains of length f(m)) and a
// Theorem 3.3 LBA-reduction instance. These are the allocation-heavy hot
// paths the interned frontier targets; allocs/op here is the interning
// regression guard.
func BenchmarkINDDecide(b *testing.B) {
	b.Run("chain", func(b *testing.B) {
		for _, m := range []int{8, 10} {
			s := perm.Scheme(m)
			db := schema.MustDatabase(s)
			gamma := perm.LandauPermutation(m)
			fm := perm.Landau(m)
			delta := gamma.Pow(new(big.Int).Sub(fm, big.NewInt(1)))
			sigma := []deps.IND{perm.IND(s, gamma)}
			goal := perm.IND(s, delta)
			b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := ind.Decide(db, sigma, goal)
					if err != nil || !res.Implied {
						b.Fatal("decision wrong")
					}
				}
			})
		}
	})
	b.Run("lba", func(b *testing.B) {
		inst, err := lba.Reduce(lba.Eraser(), lba.Input("a", 3))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := ind.Decide(inst.DB, inst.Sigma, inst.Goal)
			if err != nil || !res.Implied {
				b.Fatal("reduction decision wrong")
			}
		}
	})
}

// BenchmarkSearchExhaustive scans a full Domain=3/MaxTuples=3 exhaustive
// space (the goal is trivially satisfied, so no early hit cuts the scan
// short). Run with -cpu 1,2,8 to see the worker sharding; the candidate
// order contract keeps the result deterministic at any width.
func BenchmarkSearchExhaustive(b *testing.B) {
	db := schema.MustDatabase(schema.MustScheme("R", "A", "B", "C"))
	sigma := []deps.Dependency{deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B"))}
	goal := deps.NewIND("R", deps.Attrs("A"), "R", deps.Attrs("A"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, found, err := search.Counterexample(db, sigma, goal, search.Options{Domain: 3, MaxTuples: 3})
		if err != nil || found {
			b.Fatalf("trivial goal cannot have a counterexample: %v %v", found, err)
		}
	}
}

// --- chase engine ablation: semi-naive vs naive reference -------------------

// BenchmarkChaseEngines runs the semi-naive chase and the naive
// reference engine (the pre-rewrite implementation, kept in
// internal/chase as the differential oracle) on the chase workload
// instances of internal/benchws. The spiral is the headline case: a
// budget-bounded divergent chase where the reference rebuilds every
// witness map over the whole tableau each round while the semi-naive
// engine touches only the delta.
func BenchmarkChaseEngines(b *testing.B) {
	b.Run("spiral", func(b *testing.B) {
		db, sigma, goal := benchws.SpiralInstance(4)
		opt := chase.Options{MaxTuples: 1500}
		b.Run("seminaive", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := chase.ImpliesFD(db, sigma, goal, opt)
				if err != nil || res.Verdict != chase.Unknown {
					b.Fatal("spiral chase wrong")
				}
			}
		})
		b.Run("reference", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := chase.ReferenceImpliesFD(db, sigma, goal, opt)
				if err != nil || res.Verdict != chase.Unknown {
					b.Fatal("spiral chase wrong")
				}
			}
		})
	})
	b.Run("widefd", func(b *testing.B) {
		db, sigma, goal := benchws.WideFDInstance(300)
		b.Run("seminaive", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := chase.ImpliesRD(db, sigma, goal, chase.Options{})
				if err != nil || res.Verdict != chase.Implied {
					b.Fatal("widefd chase wrong")
				}
			}
		})
		b.Run("reference", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := chase.ReferenceImpliesRD(db, sigma, goal, chase.Options{})
				if err != nil || res.Verdict != chase.Implied {
					b.Fatal("widefd chase wrong")
				}
			}
		})
	})
	b.Run("lemma72", func(b *testing.B) {
		s, err := counterex.NewSection7(6)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("seminaive", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := s.Lemma72(chase.Options{})
				if err != nil || res.Verdict != chase.Implied {
					b.Fatal("Lemma 7.2 chase wrong")
				}
			}
		})
		b.Run("reference", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := chase.ReferenceImpliesFD(s.DB, s.Sigma, s.Goal, chase.Options{})
				if err != nil || res.Verdict != chase.Implied {
					b.Fatal("Lemma 7.2 chase wrong")
				}
			}
		})
	})
}

// --- parallel chase and engine-pool ablations --------------------------------

// BenchmarkChaseParallel is the sharded-pass ablation: the scan-heavy
// 8-relation spiral (each round re-scans every relation for eight FDs
// that never fire) at 1, 2, 4 and 8 workers. Verdicts, traces and
// counters are bit-identical across the columns (differential-tested in
// internal/chase); only the wall clock may differ. Run with -cpu
// 1,2,8 to also vary GOMAXPROCS. The wall-clock speedup tracks real
// cores: on a single-core host the higher-worker columns instead pin
// the sharding overhead (they must stay within noise of workers=1).
func BenchmarkChaseParallel(b *testing.B) {
	db, sigma, goal := benchws.SpiralScanInstance(8)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opt := chase.Options{MaxTuples: 4096, Workers: w}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := chase.ImpliesFD(db, sigma, goal, opt)
				if err != nil || res.Verdict != chase.Unknown {
					b.Fatal("spiral-scan chase wrong")
				}
			}
		})
	}
}

// BenchmarkChasePool is the cross-request pooling ablation: the warm
// repeat-request steady state of the Proposition 4.1 implication with
// engine-state recycling on and off. The pooled column is the depserve
// hot path (near-zero allocations; TestZeroAlloc pins it exactly).
func BenchmarkChasePool(b *testing.B) {
	db := schema.MustDatabase(
		schema.MustScheme("R", "X", "Y"),
		schema.MustScheme("S", "T", "U"),
	)
	sigma := []deps.Dependency{
		deps.NewIND("R", deps.Attrs("X", "Y"), "S", deps.Attrs("T", "U")),
		deps.NewFD("S", deps.Attrs("T"), deps.Attrs("U")),
	}
	goal := deps.NewFD("R", deps.Attrs("X"), deps.Attrs("Y"))
	b.Run("unpooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := chase.ImpliesFD(db, sigma, goal, chase.Options{})
			if err != nil || res.Verdict != chase.Implied {
				b.Fatal("chase wrong")
			}
		}
	})
	b.Run("pooled", func(b *testing.B) {
		opt := chase.Options{Pool: chase.NewEnginePool(nil)}
		if _, err := chase.ImpliesFD(db, sigma, goal, opt); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := chase.ImpliesFD(db, sigma, goal, opt)
			if err != nil || res.Verdict != chase.Implied {
				b.Fatal("chase wrong")
			}
		}
	})
}

// --- machine-readable export and instrumentation-overhead guard -------------

// benchJSON is the -benchjson flag: after the tests/benchmarks of this
// package run, TestMain executes one representative instrumented workload
// per engine (IND decision, FD proof, unary closure, FD+IND chase,
// counterexample search, maintenance) into a single obs registry and
// writes its snapshot — counters, gauges, histograms, span trees — to the
// named file (conventionally BENCH_engines.json):
//
//	go test -bench . -benchjson BENCH_engines.json
var benchJSON = flag.String("benchjson", "", "write per-engine obs counters to `file` after the run")

func TestMain(m *testing.M) {
	flag.Parse()
	code := m.Run()
	if code == 0 && *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			code = 1
		}
	}
	os.Exit(code)
}

// writeBenchJSON runs the per-engine reference workloads of
// internal/benchws under one registry and exports the snapshot
// (counters plus benchws.*_ns wall-time gauges; cmd/benchdiff compares
// a fresh run against this committed baseline).
func writeBenchJSON(path string) error {
	// The benchmarks that just ran leave a heap the GC is still paying
	// for; settle it so the baseline's wall times measure the workloads,
	// not the harness's garbage.
	runtime.GC()
	reg := obs.New()
	if err := benchws.Run(reg, 5); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.Snapshot().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// BenchmarkChaseObs compares the Proposition 4.1 chase with
// instrumentation disabled (nil registry — the default for every caller
// that doesn't opt in) and enabled. The disabled path must not allocate
// beyond the uninstrumented chase: nil instruments are a predictable
// branch, not an interface call.
func BenchmarkChaseObs(b *testing.B) {
	db := schema.MustDatabase(
		schema.MustScheme("R", "X", "Y"),
		schema.MustScheme("S", "T", "U"),
	)
	sigma := []deps.Dependency{
		deps.NewIND("R", deps.Attrs("X", "Y"), "S", deps.Attrs("T", "U")),
		deps.NewFD("S", deps.Attrs("T"), deps.Attrs("U")),
	}
	goal := deps.NewFD("R", deps.Attrs("X"), deps.Attrs("Y"))
	b.Run("disabled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := chase.ImpliesFD(db, sigma, goal, chase.Options{})
			if err != nil || res.Verdict != chase.Implied {
				b.Fatal("chase wrong")
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		b.ReportAllocs()
		reg := obs.New()
		for i := 0; i < b.N; i++ {
			res, err := chase.ImpliesFD(db, sigma, goal, chase.Options{Obs: reg})
			if err != nil || res.Verdict != chase.Implied {
				b.Fatal("chase wrong")
			}
		}
	})
}

// TestZeroAlloc is the `make check` gate for the zero-cost-when-off
// contract of BenchmarkChaseObs: with instrumentation and provenance
// both disabled (the Options zero value — what every caller gets unless
// it opts in), the Proposition 4.1 chase must stay under its pinned
// allocation ceiling. Both features hide behind predictable nil-checks,
// so turning either one ON must be the only way to pay for it; a new
// allocation on the disabled path fails this test before it fails a
// benchmark diff.
func TestZeroAlloc(t *testing.T) {
	db := schema.MustDatabase(
		schema.MustScheme("R", "X", "Y"),
		schema.MustScheme("S", "T", "U"),
	)
	sigma := []deps.Dependency{
		deps.NewIND("R", deps.Attrs("X", "Y"), "S", deps.Attrs("T", "U")),
		deps.NewFD("S", deps.Attrs("T"), deps.Attrs("U")),
	}
	goal := deps.NewFD("R", deps.Attrs("X"), deps.Attrs("Y"))
	run := func(opt chase.Options) float64 {
		return testing.AllocsPerRun(200, func() {
			res, err := chase.ImpliesFD(db, sigma, goal, opt)
			if err != nil || res.Verdict != chase.Implied {
				t.Fatal("chase wrong")
			}
		})
	}
	disabled := run(chase.Options{})
	withProv := run(chase.Options{Provenance: true})
	withProf := run(chase.Options{Profile: true})
	pool := chase.NewEnginePool(nil)
	pooledOpt := chase.Options{Pool: pool}
	if _, err := chase.ImpliesFD(db, sigma, goal, pooledOpt); err != nil {
		t.Fatal(err) // prime: the first request builds the engine the rest reuse
	}
	pooled := run(pooledOpt)
	t.Logf("allocs/run: disabled %.1f, provenance %.1f, profile %.1f, warm pooled %.1f",
		disabled, withProv, withProf, pooled)
	// Measured 96 allocs/run (85 before the engine pool's pointer-entry
	// interner: a few extra cold-compile allocations bought an exactly-
	// zero warm pooled path); the ceiling leaves slack for toolchain
	// drift, not for regressions (same pin as the chase package's
	// TestDisabledObsAllocsPinned). The zero value disables obs,
	// provenance AND the per-dependency profiler, so this one ceiling
	// pins all three off-switches at once.
	if disabled > 100 {
		t.Errorf("disabled chase path allocates %.1f/run, ceiling 100", disabled)
	}
	if withProv <= disabled {
		t.Errorf("provenance-on path allocates %.1f/run vs %.1f disabled; capture is not recording",
			withProv, disabled)
	}
	if withProf <= disabled {
		t.Errorf("profile-on path allocates %.1f/run vs %.1f disabled; attribution is not recording",
			withProf, disabled)
	}
	// The pooled serve hot path is pinned EXACTLY: a warm engine replays
	// the whole chase in recycled arenas, indexes and union-find state,
	// so a repeat request for a cached (schema, sigma) shape must not
	// allocate at all. (Not under -race: sync.Pool drops Puts at random
	// there and the instrumentation itself allocates.)
	if !raceDetectorEnabled && pooled != 0 {
		t.Errorf("warm pooled chase path allocates %.1f/run, want exactly 0", pooled)
	}

	// Telemetry history and alerting off (-ts-resolution 0) must be
	// free: every nil-receiver entry point depserve's loop and handlers
	// can hit is pinned at EXACTLY zero allocations.
	var store *tsdb.Store
	var wd *tsdb.Watchdog
	snap := obs.New().Snapshot()
	off := testing.AllocsPerRun(200, func() {
		store.Sample(snap, time.Time{})
		if store.Query(tsdb.QueryOptions{}) != nil {
			t.Fatal("nil store query returned series")
		}
		if _, ok := store.WindowSum("serve.requests_total", time.Minute); ok {
			t.Fatal("nil store window returned data")
		}
		wd.Evaluate(time.Time{})
		if wd.Active() != nil || wd.CriticalNames() != nil {
			t.Fatal("nil watchdog returned alerts")
		}
	})
	if off != 0 {
		t.Errorf("disabled tsdb+watchdog path allocates %.1f/run, want exactly 0", off)
	}
}

// BenchmarkChaseProfile is the per-dependency profiler's ablation: the
// Lemma 7.2 chase with attribution off (the default) and on. The off
// column must match the uninstrumented engine — the profiler hides
// behind the same single-nil-check pattern as provenance — and the on
// column prices the two time.Now calls per member scan.
func BenchmarkChaseProfile(b *testing.B) {
	s, err := counterex.NewSection7(4)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("disabled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := s.Lemma72(chase.Options{})
			if err != nil || res.Verdict != chase.Implied {
				b.Fatal("Lemma 7.2 chase wrong")
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := s.Lemma72(chase.Options{Profile: true})
			if err != nil || res.Verdict != chase.Implied || res.Profile == nil {
				b.Fatal("profiled Lemma 7.2 chase wrong")
			}
		}
	})
}

// --- batch implication and the footprint-keyed answer cache ----------------

// benchServer boots an in-process depserve on a discard logger.
func benchServer(b *testing.B, cacheSize int) *httptest.Server {
	b.Helper()
	s := serve.New(serve.Config{
		Reg:       obs.New(),
		Logger:    slog.New(slog.NewJSONHandler(io.Discard, nil)),
		CacheSize: cacheSize,
	})
	s.SetReady(true)
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(ts.Close)
	return ts
}

func benchPost(b *testing.B, url, body string) {
	b.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
}

// benchBatchInstance renders the shared instance: R(A0..A31) with the
// 31-step FD chain, and n goals R: A0 -> Ai cycling the chain depths.
func benchBatchInstance(n int) (schemaJSON, sigmaJSON string, goals []string) {
	attrs := make([]string, 32)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("A%d", i)
	}
	schemaJSON = fmt.Sprintf(`["R(%s)"]`, strings.Join(attrs, ", "))
	members := make([]string, 31)
	for i := range members {
		members[i] = fmt.Sprintf(`"R: A%d -> A%d"`, i, i+1)
	}
	sigmaJSON = "[" + strings.Join(members, ", ") + "]"
	goals = make([]string, n)
	for i := range goals {
		goals[i] = fmt.Sprintf("R: A0 -> A%d", 1+i%31)
	}
	return schemaJSON, sigmaJSON, goals
}

// BenchmarkBatchImplies is the batch-vs-sequential ablation: n goals
// answered by one POST /v1/batch against n separate POST /v1/implies,
// all against the same inline 32-attribute FD-chain schema with the
// cache off, so the comparison isolates what the batch endpoint
// amortizes — one parse, one compiled system, one warm engine pool per
// request instead of per goal. The sequential ns/op and the batch
// ns/goal metric are directly comparable; the acceptance bar is
// batch=100 at least 5x below sequential.
func BenchmarkBatchImplies(b *testing.B) {
	ts := benchServer(b, 0)
	b.Run("sequential", func(b *testing.B) {
		schemaJSON, sigmaJSON, goals := benchBatchInstance(100)
		bodies := make([]string, len(goals))
		for i, g := range goals {
			bodies[i] = fmt.Sprintf(`{"schema": %s, "sigma": %s, "goal": %q}`,
				schemaJSON, sigmaJSON, g)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchPost(b, ts.URL+"/v1/implies", bodies[i%len(bodies)])
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/goal")
	})
	for _, size := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			schemaJSON, sigmaJSON, goals := benchBatchInstance(size)
			quoted := make([]string, len(goals))
			for i, g := range goals {
				quoted[i] = fmt.Sprintf("%q", g)
			}
			body := fmt.Sprintf(`{"schema": %s, "sigma": %s, "goals": [%s]}`,
				schemaJSON, sigmaJSON, strings.Join(quoted, ", "))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchPost(b, ts.URL+"/v1/batch", body)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*size), "ns/goal")
		})
	}
}

// BenchmarkFootprintCache times the answer cache's serving hot path —
// the same /v1/implies request against a cold server (full engine run
// every time) and a warm one (footprint-keyed hit) — plus the
// cache-side cost of one tagged insert and its surgical invalidation.
func BenchmarkFootprintCache(b *testing.B) {
	schemaJSON, sigmaJSON, goals := benchBatchInstance(31)
	body := fmt.Sprintf(`{"schema": %s, "sigma": %s, "goal": %q}`,
		schemaJSON, sigmaJSON, goals[30])
	b.Run("uncached", func(b *testing.B) {
		ts := benchServer(b, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchPost(b, ts.URL+"/v1/implies", body)
		}
	})
	b.Run("cached", func(b *testing.B) {
		ts := benchServer(b, 1024)
		benchPost(b, ts.URL+"/v1/implies", body) // prime: every timed request hits
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchPost(b, ts.URL+"/v1/implies", body)
		}
	})
	b.Run("invalidate", func(b *testing.B) {
		cache := core.NewAnswerCache(4096, time.Hour, nil)
		val := core.CachedAnswer{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			key := fmt.Sprintf("k%d", i&1023)
			cache.PutTagged(key, val, []string{"m1", "m2"})
			if n := cache.InvalidateMembers("m1"); n != 1 {
				b.Fatalf("invalidated %d entries, want 1", n)
			}
		}
	})
}
