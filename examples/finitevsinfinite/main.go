// Finite vs unrestricted implication (Theorem 4.4): with FDs and INDs
// together, a dependency can hold in every FINITE database satisfying Σ
// yet fail in an infinite one. This example walks through both halves of
// the theorem with Σ = {R: A -> B, R[A] ⊆ R[B]}.
package main

import (
	"fmt"
	"log"

	"indfd/internal/core"
	"indfd/internal/counterex"
	"indfd/internal/deps"
)

func main() {
	inst := counterex.Fig41()
	sys := core.NewSystem(inst.DB)
	if err := sys.Add(inst.Sigma...); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Σ = {R: A -> B, R[A] <= R[B]}")
	for _, goal := range []deps.Dependency{
		deps.NewIND("R", deps.Attrs("B"), "R", deps.Attrs("A")), // Thm 4.4(a)
		deps.NewFD("R", deps.Attrs("B"), deps.Attrs("A")),       // Thm 4.4(b)
	} {
		fin, err := sys.ImpliesFinite(goal, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		unr, err := sys.Implies(goal, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-20v  finite: %-4v unrestricted: %v\n", goal, fin.Verdict, unr.Verdict)
	}

	// Why finite implication holds: a counting argument. |r[B]| ≤ |r[A]|
	// (the FD) and r[A] ⊆ r[B] force r[A] = r[B] over finite r. Verify by
	// exhaustive search that no small finite database is a counterexample.
	examined, err := inst.NoFiniteCounterexample(3, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexhaustive search: %d small databases, none satisfies Σ while violating σ\n", examined)

	// Why unrestricted implication fails: the infinite relation of
	// Fig 4.1, {(i+1, i) : i ≥ 0}.
	fmt.Println("\nFig 4.1, the infinite witness (first 6 tuples):")
	fmt.Println(inst.Witness.Window(6))
	if err := inst.CheckWitness(100); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwindow check (100 tuples): the witness obeys Σ and violates σ —")
	fmt.Println("the B entry 0 never appears in column A, whose entries are all ≥ 1.")
}
