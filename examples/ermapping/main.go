// Mapping an entity-relationship schema to relations, keys and inclusion
// dependencies — the paper's motivating application. The ISA MGR ⊑ EMP
// becomes the IND of the introduction ("every manager is an employee"),
// and the full dependency set feeds the implication engines and the
// design linter.
package main

import (
	"fmt"
	"log"

	"indfd/internal/chase"
	"indfd/internal/er"
	"indfd/internal/lint"
)

func main() {
	schema := er.Schema{
		Entities: []er.Entity{
			{Name: "EMP", Key: []string{"ENO"}, Attrs: []string{"ENAME", "SAL"}},
			{Name: "DEPT", Key: []string{"DNO"}, Attrs: []string{"DNAME"}},
			{Name: "MGR", Key: []string{"ENO"}},
		},
		Relationships: []er.Relationship{
			{Name: "WORKS_IN", Participants: []string{"EMP", "DEPT"}, Attrs: []string{"SINCE"}},
			{Name: "MANAGES", Participants: []string{"MGR", "DEPT"}},
		},
		ISAs: []er.ISA{{Sub: "MGR", Super: "EMP"}},
	}
	m, err := er.Map(schema)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("relational schema:")
	fmt.Println(m.DB)
	fmt.Println("\ngenerated dependencies:")
	for _, d := range m.Sigma {
		fmt.Printf("  %v\n", d)
	}

	adv, err := lint.Advise(m.DB, m.Sigma, chase.Options{MaxTuples: 256})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndesign advice on the mapped schema:")
	fmt.Println(adv)
}
