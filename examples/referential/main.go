// Referential-integrity design scenario: INDs express foreign keys, FDs
// express keys, and their interaction derives constraints the designer
// never wrote — including a repeating dependency (Proposition 4.3).
//
// The schema models a small order-processing database:
//
//	CUST(CID, NAME)            CID is the key
//	ORD(OID, CID, SHIPTO)      OID is the key; CID references CUST
//	INV(OID, BILLCID)          invoices; OID references ORD
package main

import (
	"fmt"
	"log"

	"indfd/internal/chase"
	"indfd/internal/core"
	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/schema"
)

func main() {
	db := schema.MustDatabase(
		schema.MustScheme("CUST", "CID", "NAME"),
		schema.MustScheme("ORD", "OID", "CID", "SHIPTO"),
		schema.MustScheme("INV", "OID", "BILLCID", "SHIPCID"),
	)
	sigma := []deps.Dependency{
		// Keys.
		deps.NewFD("CUST", deps.Attrs("CID"), deps.Attrs("NAME")),
		deps.NewFD("ORD", deps.Attrs("OID"), deps.Attrs("CID", "SHIPTO")),
		// Foreign keys: orders reference customers; invoices reference
		// orders, and both their customer columns pair the order id with
		// the ordering customer.
		deps.NewIND("ORD", deps.Attrs("CID"), "CUST", deps.Attrs("CID")),
		deps.NewIND("INV", deps.Attrs("OID", "BILLCID"), "ORD", deps.Attrs("OID", "CID")),
		deps.NewIND("INV", deps.Attrs("OID", "SHIPCID"), "ORD", deps.Attrs("OID", "CID")),
	}
	sys := core.NewSystem(db)
	if err := sys.Add(sigma...); err != nil {
		log.Fatal(err)
	}

	// Derived foreign key by IND transitivity: invoices reference
	// customers.
	q1 := deps.NewIND("INV", deps.Attrs("BILLCID"), "CUST", deps.Attrs("CID"))
	report(sys, q1)

	// Derived FD by Proposition 4.1: an invoice's order id determines its
	// billing customer.
	q2 := deps.NewFD("INV", deps.Attrs("OID"), deps.Attrs("BILLCID"))
	report(sys, q2)

	// Derived RD by Proposition 4.3: because both customer columns of INV
	// pair OID with the ordering customer, they must be EQUAL in every
	// tuple — a repeating dependency the designer never wrote.
	q3 := deps.NewRD("INV", deps.Attrs("BILLCID"), deps.Attrs("SHIPCID"))
	report(sys, q3)

	// The chase can also show the RD concretely: complete a sample
	// invoice under Σ and watch the two columns coincide.
	seed := data.NewDatabase(db)
	seed.MustInsert("INV", data.Tuple{"o1", "alice", "alice"})
	completed, err := chase.Complete(seed, sigma, chase.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nchase completion of a single invoice under Σ:")
	fmt.Println(completed)
}

func report(sys *core.System, goal deps.Dependency) {
	a, err := sys.Implies(goal, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Σ ⊨ %v?  %v  [engine: %s]\n", goal, a.Verdict, a.Engine)
}
