// Why no finite axiomatization exists for FDs + INDs (Theorems 6.1/7.1):
// this example builds the Section 6 construction for a chosen k, shows
// that a bounded-arity rule engine (Armstrong + IND1-3 + the
// Proposition 4.x interaction rules — all at most 3-ary) cannot derive the
// goal σ_k, although σ_k IS finitely implied, and then exhibits the
// Theorem 5.1 witness Γ mechanically.
package main

import (
	"flag"
	"fmt"
	"log"

	"indfd/internal/counterex"
	"indfd/internal/interact"
)

func main() {
	k := flag.Int("k", 3, "parameter k of the Section 6 construction")
	flag.Parse()

	s, err := counterex.NewSection6(*k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Section 6 construction, k = %d:\n", *k)
	for _, d := range s.Sigma {
		fmt.Printf("  %v\n", d)
	}
	fmt.Printf("goal σ = %v\n\n", s.Goal)

	// The exact finite-implication engine (cardinality-cycle rule, whose
	// instances have k+1 antecedents) proves σ.
	sys, err := s.UnarySystem()
	if err != nil {
		log.Fatal(err)
	}
	fin, err := sys.ImpliesFinite(s.Goal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact finite-implication engine:     Σ ⊨fin σ?  %v\n", fin)

	// The bounded-arity rule engine cannot: every sound rule with at most
	// k antecedents misses the (k+1)-IND counting cycle.
	derived, err := interact.Derives(s.DB, s.Sigma, nil, s.Goal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3-ary interaction rule engine:       Σ ⊢ σ?     %v\n\n", derived)

	// The Theorem 5.1 witness: Γ = Σ ∪ {trivial dependencies} is closed
	// under k-ary finite implication (each ≤k-subset of Γ misses one of
	// the k+1 INDs δ_j, and the Fig 6.1 database d_j obeys exactly
	// Γ − δ_j) yet σ escapes it.
	rep, err := s.Verify()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mechanized Theorem 6.1 verification (universe of %d sentences):\n", rep.UniverseSize)
	fmt.Printf("  Σ ⊨fin σ:                        %v\n", rep.SigmaImpliesGoalFinitely)
	fmt.Printf("  Σ ⊭ σ (unrestricted):            %v\n", rep.GoalNotImpliedUnrestrictedly)
	fmt.Printf("  σ ∉ Γ:                           %v\n", rep.GoalNotInGamma)
	for j, ok := range rep.ArmstrongExact {
		fmt.Printf("  d_%d obeys exactly Γ − δ_%d:       %v\n", j, j, ok)
	}
	if rep.Ok() {
		fmt.Printf("\n⇒ Γ is closed under %d-ary finite implication but not under finite\n", *k)
		fmt.Printf("  implication: by Theorem 5.1, no %d-ary complete axiomatization exists.\n", *k)
		fmt.Println("  Since k was arbitrary, no finite axiomatization exists at all.")
	} else {
		fmt.Println("verification FAILED")
	}
}
