// Design advice and data checking: the lint package turns the paper's
// implication engines into a schema linter. This example declares an
// order-processing schema, asks for advice, then checks and repairs a
// concrete database.
package main

import (
	"fmt"
	"log"

	"indfd/internal/chase"
	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/lint"
	"indfd/internal/schema"
)

func main() {
	ds := schema.MustDatabase(
		schema.MustScheme("CUST", "CID", "NAME"),
		schema.MustScheme("ORD", "OID", "CID"),
		schema.MustScheme("INV", "OID", "BILLCID", "SHIPCID"),
	)
	sigma := []deps.Dependency{
		deps.NewFD("CUST", deps.Attrs("CID"), deps.Attrs("NAME")),
		deps.NewFD("ORD", deps.Attrs("OID"), deps.Attrs("CID")),
		deps.NewIND("ORD", deps.Attrs("CID"), "CUST", deps.Attrs("CID")),
		deps.NewIND("INV", deps.Attrs("OID", "BILLCID"), "ORD", deps.Attrs("OID", "CID")),
		deps.NewIND("INV", deps.Attrs("OID", "SHIPCID"), "ORD", deps.Attrs("OID", "CID")),
	}

	adv, err := lint.Advise(ds, sigma, chase.Options{MaxTuples: 256})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== design advice ===")
	fmt.Println(adv)

	// A concrete database with a dangling foreign key.
	db := data.NewDatabase(ds)
	db.MustInsert("CUST", data.Tuple{"c1", "ann"})
	db.MustInsert("ORD", data.Tuple{"o1", "c1"})
	db.MustInsert("INV", data.Tuple{"o2", "c1", "c1"}) // o2 does not exist

	fmt.Println("\n=== integrity check ===")
	violations, err := lint.Check(db, sigma)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range violations {
		fmt.Println(" ", v)
	}

	repaired, added, err := lint.Repair(db, sigma, chase.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== repaired (%d tuples chased in) ===\n", added)
	fmt.Println(repaired)
}
