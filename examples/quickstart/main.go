// Quickstart: declare a database scheme, add functional and inclusion
// dependencies, and ask implication questions with proofs and
// counterexamples.
package main

import (
	"fmt"
	"log"

	"indfd/internal/core"
	"indfd/internal/deps"
	"indfd/internal/schema"
)

func main() {
	// A scheme with managers and employees, as in the paper's
	// introduction.
	db := schema.MustDatabase(
		schema.MustScheme("MGR", "NAME", "DEPT"),
		schema.MustScheme("EMP", "NAME", "DEPT", "SAL"),
	)
	sys := core.NewSystem(db)

	// Every manager is an employee of the department they manage, and an
	// employee's name determines department and salary.
	if err := sys.Add(
		deps.NewIND("MGR", deps.Attrs("NAME", "DEPT"), "EMP", deps.Attrs("NAME", "DEPT")),
		deps.NewFD("EMP", deps.Attrs("NAME"), deps.Attrs("DEPT", "SAL")),
	); err != nil {
		log.Fatal(err)
	}

	// Is every manager name an employee name? (Yes — projection, IND2.)
	goal := deps.NewIND("MGR", deps.Attrs("NAME"), "EMP", deps.Attrs("NAME"))
	a, err := sys.Implies(goal, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Σ ⊨ %v?  %v  [engine: %s]\n", goal, a.Verdict, a.Engine)
	fmt.Println(a.Proof)
	fmt.Println()

	// Does a manager's name determine their department? This needs the
	// FD/IND interaction of Proposition 4.1 and is found by the chase.
	goal2 := deps.NewFD("MGR", deps.Attrs("NAME"), deps.Attrs("DEPT"))
	a2, err := sys.Implies(goal2, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Σ ⊨ %v?  %v  [engine: %s]\n", goal2, a2.Verdict, a2.Engine)
	fmt.Println()

	// Is every employee a manager? No — and we get a finite
	// counterexample database.
	goal3 := deps.NewIND("EMP", deps.Attrs("NAME"), "MGR", deps.Attrs("NAME"))
	a3, err := sys.Implies(goal3, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Σ ⊨ %v?  %v  [engine: %s]\n", goal3, a3.Verdict, a3.Engine)
	if a3.Counterexample != nil {
		fmt.Println("counterexample:")
		fmt.Println(a3.Counterexample)
	}
}
