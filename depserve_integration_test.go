package indfd

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"indfd/internal/obs"
	"indfd/internal/serve"
)

// The depserve workflow end to end, driven by the committed example
// payloads (the same ones the README's curl examples use): start the
// server, POST an implication query, and read the answer back off
// /metrics as a Prometheus scrape would — then push the divergent
// FD+IND instance through a 50ms deadline and get the 503 with partial
// chase statistics instead of a wedged worker.
func TestDepserveEndToEnd(t *testing.T) {
	reg := obs.New()
	reg.SetSpanCap(8)
	s := serve.New(serve.Config{
		Reg:    reg,
		Logger: slog.New(slog.NewJSONHandler(io.Discard, nil)),
	})
	s.SetReady(true)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(payloadFile string) (*http.Response, []byte) {
		t.Helper()
		body, err := os.ReadFile(payloadFile)
		if err != nil {
			t.Fatalf("example payload: %v", err)
		}
		resp, err := http.Post(ts.URL+"/v1/implies", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		return resp, b
	}

	// 1. The fast unary-IND query answers yes via the Section 3 engine.
	resp, body := post("examples/depserve/implies_fast.json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fast query: status %d, body %s", resp.StatusCode, body)
	}
	var ans serve.ImpliesResponse
	if err := json.Unmarshal(body, &ans); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if ans.Verdict != "yes" || ans.Engine != "ind" || ans.Proof == "" {
		t.Errorf("fast query: verdict=%q engine=%q proof=%q, want yes/ind/proof",
			ans.Verdict, ans.Engine, ans.Proof)
	}

	// 2. A scrape of /metrics shows the request's work: the per-endpoint
	// latency histogram and the per-engine answer counter.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	metrics := string(mb)
	for _, want := range []string{
		`http_latency_us_bucket{path="/v1/implies",le="`,
		`http_requests_total{path="/v1/implies",code="200"} 1`,
		`serve_answers_total{engine="ind",verdict="yes"} 1`,
		`ind_expanded_total`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// 3. The divergent FD+IND instance outruns its 50ms deadline: a 503
	// carrying the partial rounds/tuples the chase managed.
	resp, body = post("examples/depserve/implies_divergent.json")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("divergent query: status %d, body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &ans); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if ans.Verdict != "unknown" || ans.Engine != "chase" {
		t.Errorf("divergent query: verdict=%q engine=%q, want unknown/chase",
			ans.Verdict, ans.Engine)
	}
	if ans.ChaseRounds == 0 || ans.ChaseTuples == 0 {
		t.Errorf("divergent query: rounds=%d tuples=%d, want partial work reported",
			ans.ChaseRounds, ans.ChaseTuples)
	}
	if n := reg.Counter("serve.deadline_exceeded").Value(); n != 1 {
		t.Errorf("serve.deadline_exceeded = %d, want 1", n)
	}
	if n := reg.Counter("chase.rounds").Value(); n == 0 {
		t.Errorf("chase.rounds counter = 0, want the divergent chase's rounds")
	}
}
