// Command lbared demonstrates the Theorem 3.3 reduction: it simulates a
// linear bounded automaton on an input, builds the corresponding
// IND-implication instance, decides it with the Section 3 decision
// procedure, and confirms the two agree.
//
// Usage:
//
//	lbared [-machine eraser|rejector] [-n 3] [-show] [-chain]
//	       [-stats] [-trace-json FILE] [-pprof ADDR] [-memprofile FILE]
//
// With -stats, the decision procedure's ind.* counters (expansions,
// frontier high-water mark, chain length) and spans go to stderr;
// -trace-json FILE writes the span tree as JSON, -pprof ADDR serves
// net/http/pprof, and -memprofile FILE writes an end-of-run heap
// profile — useful because the reduction's instances grow exponentially
// in n (Theorem 3.3).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"indfd/internal/cliutil"
	"indfd/internal/ind"
	"indfd/internal/lba"
	"indfd/internal/obs"
)

func main() {
	machine := flag.String("machine", "eraser", "machine to run: eraser or rejector")
	n := flag.Int("n", 3, "input length (a^n); must be ≥ 2")
	show := flag.Bool("show", false, "print the generated IND instance")
	chain := flag.Bool("chain", false, "print the Corollary 3.2 chain (the computation history)")
	obsFlags := cliutil.Register(flag.CommandLine)
	flag.Parse()
	if err := obsFlags.StartPprof(); err != nil {
		fatal(err)
	}
	reg := obsFlags.Registry()
	code, err := run(os.Stdout, *machine, *n, *show, *chain, reg)
	if ferr := obsFlags.Finish(reg); err == nil {
		err = ferr
	}
	if err != nil {
		fatal(err)
	}
	os.Exit(code)
}

// run executes the demonstration, writing to w, and returns the process
// exit code.
func run(w io.Writer, machine string, n int, show, chain bool, reg *obs.Registry) (int, error) {
	var m *lba.Machine
	switch machine {
	case "eraser":
		m = lba.Eraser()
	case "rejector":
		m = lba.Eraser()
		var rules []lba.Rewrite
		for _, r := range m.Rules {
			if r.To[0] != "h" {
				rules = append(rules, r)
			}
		}
		m.Rules = rules
	default:
		return 1, fmt.Errorf("unknown machine %q", machine)
	}

	sp := reg.StartSpan("lbared.reduction")
	defer sp.End()
	sp.SetAttr("machine", machine)
	sp.SetInt("n", int64(n))

	input := lba.Input("a", n)
	simSp := sp.StartSpan("lba.simulate")
	accepts, err := m.Accepts(input, 0)
	simSp.End()
	if err != nil {
		return 1, err
	}
	fmt.Fprintf(w, "machine %s on input a^%d: accepts=%v (space bound %d)\n", machine, n, accepts, n)

	redSp := sp.StartSpan("lba.reduce")
	inst, err := lba.Reduce(m, input)
	redSp.End()
	if err != nil {
		return 1, err
	}
	sch, _ := inst.DB.Scheme("R")
	fmt.Fprintf(w, "reduction: 1 relation scheme, %d attributes, |Σ| = %d INDs of width %d, goal width %d\n",
		sch.Width(), len(inst.Sigma), inst.Sigma[0].Width(), inst.Goal.Width())
	if show {
		fmt.Fprintf(w, "goal: %v\n", inst.Goal)
		for _, d := range inst.Sigma {
			fmt.Fprintf(w, "  %v\n", d)
		}
	}

	decSp := sp.StartSpan("ind.decide")
	res, err := ind.Decide(inst.DB, inst.Sigma, inst.Goal)
	decSp.End()
	if err != nil {
		return 1, err
	}
	res.Stats.Record(reg)
	decSp.SetInt("expanded", int64(res.Stats.Expanded))
	decSp.SetInt("frontier_peak", int64(res.Stats.FrontierPeak))
	fmt.Fprintf(w, "IND decision procedure: implied=%v (expanded %d expressions, visited %d)\n",
		res.Implied, res.Stats.Expanded, res.Stats.Visited)
	if res.Implied != accepts {
		return 1, fmt.Errorf("REDUCTION DISAGREES WITH SIMULATION")
	}
	fmt.Fprintln(w, "reduction and simulation agree (Theorem 3.3)")
	if chain && res.Implied {
		fmt.Fprintln(w, "computation history (Corollary 3.2 chain):")
		for _, e := range res.Chain {
			fmt.Fprintf(w, "  %v\n", e)
		}
	}
	return 0, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lbared:", err)
	os.Exit(1)
}
