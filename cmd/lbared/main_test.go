package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunEraser(t *testing.T) {
	var out bytes.Buffer
	code, err := run(&out, "eraser", 3, true, true)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Errorf("exit code = %d", code)
	}
	for _, want := range []string{
		"accepts=true",
		"implied=true",
		"reduction and simulation agree",
		"computation history",
		"R[s@1,a@2,a@3,a@4]", // the initial configuration expression
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunRejector(t *testing.T) {
	var out bytes.Buffer
	code, err := run(&out, "rejector", 2, false, false)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Errorf("exit code = %d", code)
	}
	if !strings.Contains(out.String(), "accepts=false") || !strings.Contains(out.String(), "implied=false") {
		t.Errorf("rejector output wrong:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := run(&bytes.Buffer{}, "nope", 2, false, false); err == nil {
		t.Errorf("unknown machine should error")
	}
	if _, err := run(&bytes.Buffer{}, "eraser", 1, false, false); err == nil {
		t.Errorf("n=1 should error (reduction needs n ≥ 2)")
	}
}
