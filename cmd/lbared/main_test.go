package main

import (
	"bytes"
	"strings"
	"testing"

	"indfd/internal/obs"
)

func TestRunEraser(t *testing.T) {
	var out bytes.Buffer
	code, err := run(&out, "eraser", 3, true, true, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Errorf("exit code = %d", code)
	}
	for _, want := range []string{
		"accepts=true",
		"implied=true",
		"reduction and simulation agree",
		"computation history",
		"R[s@1,a@2,a@3,a@4]", // the initial configuration expression
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunRejector(t *testing.T) {
	var out bytes.Buffer
	code, err := run(&out, "rejector", 2, false, false, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Errorf("exit code = %d", code)
	}
	if !strings.Contains(out.String(), "accepts=false") || !strings.Contains(out.String(), "implied=false") {
		t.Errorf("rejector output wrong:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := run(&bytes.Buffer{}, "nope", 2, false, false, nil); err == nil {
		t.Errorf("unknown machine should error")
	}
	if _, err := run(&bytes.Buffer{}, "eraser", 1, false, false, nil); err == nil {
		t.Errorf("n=1 should error (reduction needs n ≥ 2)")
	}
}

func TestRunInstrumented(t *testing.T) {
	reg := obs.New()
	var out bytes.Buffer
	code, err := run(&out, "eraser", 3, false, false, reg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Errorf("exit code = %d", code)
	}
	snap := reg.Snapshot()
	if snap.Counters["ind.expanded"] == 0 || snap.Gauges["ind.frontier_peak"] == 0 {
		t.Errorf("ind instruments missing: %v %v", snap.Counters, snap.Gauges)
	}
	if h, ok := snap.Histograms["ind.chain_length"]; !ok || h.Count == 0 {
		t.Errorf("chain length histogram missing: %v", snap.Histograms)
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "lbared.reduction" {
		t.Fatalf("root span wrong: %+v", snap.Spans)
	}
	var names []string
	for _, c := range snap.Spans[0].Children {
		names = append(names, c.Name)
	}
	want := []string{"lba.simulate", "lba.reduce", "ind.decide"}
	if len(names) != 3 || names[0] != want[0] || names[1] != want[1] || names[2] != want[2] {
		t.Errorf("child spans = %v, want %v", names, want)
	}
}
