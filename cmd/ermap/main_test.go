package main

import (
	"bytes"
	"strings"
	"testing"

	"indfd/internal/parser"
)

const sampleER = `
# the paper's company
entity EMP(ENO*, ENAME, SAL)
entity DEPT(DNO*, DNAME)
entity MGR(ENO*)
isa MGR < EMP
rel WORKS_IN(EMP, DEPT; SINCE)
rel MENTORS(EMP, EMP)
`

func TestRunEmitsParseableDep(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(sampleER), &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	for _, want := range []string{
		"schema EMP(ENO, ENAME, SAL)",
		"MGR[ENO] <= EMP[ENO]",
		"WORKS_IN[EMP_ENO] <= EMP[ENO]",
		"MENTORS[EMP2_ENO] <= EMP[ENO]",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	// The output is consumable by the .dep parser.
	f, err := parser.ParseString(text)
	if err != nil {
		t.Fatalf("emitted .dep does not parse: %v\n%s", err, text)
	}
	if f.DB.Len() != 5 || len(f.Sigma) != 8 {
		t.Errorf("parsed %d relations, %d deps:\n%s", f.DB.Len(), len(f.Sigma), text)
	}
}

func TestParseERErrors(t *testing.T) {
	cases := []string{
		"nonsense\n",
		"entity E\n",    // no parens
		"entity E(,)\n", // empty attr
		"isa A B\n",     // missing <
		"rel R(;X)\n",   // empty participant
		"rel R(E; )\n",  // empty attribute
		"entity E(K*)\nrel R(E;)\n",
	}
	for _, in := range cases {
		if err := run(strings.NewReader(in), &bytes.Buffer{}); err == nil {
			t.Errorf("expected error for %q", in)
		}
	}
}

func TestRunMapErrors(t *testing.T) {
	// Parseable ER text whose mapping fails (unknown ISA target).
	in := "entity E(K*)\nisa E < X\n"
	if err := run(strings.NewReader(in), &bytes.Buffer{}); err == nil {
		t.Errorf("mapping failure should surface")
	}
}
