// Command depserve runs the implication engines as a resident HTTP
// service with live observability: a JSON API over internal/core, a
// Prometheus /metrics endpoint, structured request logs, readiness and
// pprof endpoints, and a per-request deadline so the instances the
// paper proves intractable (PSPACE-hard IND implication, divergent
// FD+IND chases) degrade into 503s with partial statistics instead of
// wedged workers.
//
// Usage:
//
//	depserve [-addr :8377] [-deadline 10s] [-max-deadline 60s]
//	         [-slow 500ms] [-budget N] [-search] [-span-cap 64]
//	         [-cache-size 1024] [-cache-ttl 0] [-trace-buf 128]
//	         [-digest-size 256] [-otlp-file FILE] [-otlp-endpoint URL]
//	         [-chase-workers N] [-pool=false]
//	         [-max-batch 256] [-batch-fanout N]
//	         [-ts-resolution 2s] [-ts-retention 15m] [-alert-rules FILE]
//	         [-stats] [-trace-json FILE] [-pprof ADDR] [-memprofile FILE]
//
// Endpoints (see internal/serve):
//
//	POST /v1/implies     implication query
//	POST /v1/explain     implication query answered with its evidence
//	                     (proof, derivation DAG, or counterexample)
//	POST /v1/satisfies   satisfaction check of concrete tuples
//	POST /v1/batch       up to -max-batch goals against one inline or
//	                     registered Σ, one shared setup, fanned across
//	                     -batch-fanout workers
//	PUT/GET/DELETE /v1/schemas/{name}  named-schema registry: versioned,
//	                     pre-compiled (schema, Σ) sets with warm engine
//	                     pools; edits surgically evict only the cached
//	                     answers whose footprint used a changed member
//	POST /v1/schemas/{name}/algebra    union/intersect/minimal-cover
//	GET  /metrics        Prometheus text exposition
//	GET  /healthz        liveness
//	GET  /readyz         readiness (armed once the listener is bound)
//	GET  /debug/obs      full metrics + recent query traces as JSON
//	GET  /debug/otlp     spans + metrics as one OTLP/JSON document
//	GET  /debug/traces   flight recorder: the last -trace-buf completed
//	                     requests; every response's X-Trace-Id resolves
//	                     at /debug/traces/{id}
//	GET  /debug/digests  query-digest analytics: the -digest-size hottest
//	                     query shapes by total engine time, with call
//	                     counts, latency histograms, error/cache-hit
//	                     rates and merged per-dependency cost profiles
//	GET  /debug/timeseries  retained telemetry history: the in-process
//	                     tsdb samples every counter delta, gauge value
//	                     and histogram quantile each -ts-resolution tick
//	                     and keeps -ts-retention of fine history plus a
//	                     coarser downsampled tier (cmd/deptop renders it
//	                     live; -ts-resolution 0 turns history off)
//	GET  /debug/alerts   the SLO watchdog: -alert-rules threshold and
//	                     multi-window burn-rate rules evaluated every
//	                     tick; firing critical alerts flip /readyz to a
//	                     degraded body naming the alert
//	GET  /debug/pprof/   profiles and execution traces
//
// Logs are JSON on stderr, one record per request; requests slower than
// -slow are logged at Warn with slow_query=true. Every request carries
// W3C trace context (an incoming traceparent's trace ID is honored),
// and -otlp-file / -otlp-endpoint stream completed requests plus
// periodic metric snapshots as OTLP/JSON batches without ever blocking
// the serve path. On SIGINT/SIGTERM the server drains in-flight
// requests, flushes the exporter, then writes the -stats / -trace-json
// / -memprofile end-of-run artifacts like the batch commands do.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"indfd/internal/cliutil"
	"indfd/internal/obs"
	"indfd/internal/obs/tsdb"
	"indfd/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8377", "listen address")
	deadline := flag.Duration("deadline", 10*time.Second, "default per-request engine deadline")
	maxDeadline := flag.Duration("max-deadline", 60*time.Second, "cap on the per-request timeout_ms")
	slow := flag.Duration("slow", 500*time.Millisecond, "latency above which a request is logged as slow")
	budget := flag.Int("budget", 0, "default chase tuple budget (0 = the chase package's default)")
	search := flag.Bool("search", false, "enable the counterexample-search fallback by default")
	spanCap := flag.Int("span-cap", 64, "root query spans retained for /debug/obs (0 = unbounded)")
	cacheSize := flag.Int("cache-size", 1024, "answer cache entries (0 disables caching)")
	cacheTTL := flag.Duration("cache-ttl", 0, "answer cache entry lifetime (0 = never expire)")
	traceBuf := flag.Int("trace-buf", 128, "flight-recorder capacity for /debug/traces (negative disables)")
	digestSize := flag.Int("digest-size", 256, "query digests retained for /debug/digests (negative disables)")
	otlpFile := flag.String("otlp-file", "", "append OTLP/JSON telemetry batches to this file (JSONL)")
	otlpEndpoint := flag.String("otlp-endpoint", "", "POST OTLP/JSON telemetry batches to this URL")
	chaseWorkers := flag.Int("chase-workers", 0, "shard chase delta scans across this many workers (0 or 1 = sequential; verdicts are bit-identical either way)")
	pool := flag.Bool("pool", true, "recycle chase engine state across requests keyed by (schema, sigma)")
	maxBatch := flag.Int("max-batch", 256, "cap on the goals in one /v1/batch request")
	batchFanout := flag.Int("batch-fanout", 0, "workers a batch's goals fan across (0 = GOMAXPROCS)")
	tsResolution := flag.Duration("ts-resolution", 2*time.Second, "time-series sample interval for /debug/timeseries (0 disables history and alerting)")
	tsRetention := flag.Duration("ts-retention", 15*time.Minute, "fine-resolution history retained (a coarser tier keeps 8x longer)")
	alertRules := flag.String("alert-rules", "", "watchdog rules file: threshold and burn-rate SLO rules evaluated every tick")
	obsFlags := cliutil.Register(flag.CommandLine)
	flag.Parse()

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	if err := run(logger, *addr, *deadline, *maxDeadline, *slow, *budget, *search, *spanCap,
		*cacheSize, *cacheTTL, *traceBuf, *digestSize, *otlpFile, *otlpEndpoint,
		*chaseWorkers, *pool, *maxBatch, *batchFanout,
		*tsResolution, *tsRetention, *alertRules, obsFlags); err != nil {
		fmt.Fprintln(os.Stderr, "depserve:", err)
		os.Exit(1)
	}
}

func run(logger *slog.Logger, addr string, deadline, maxDeadline, slow time.Duration,
	budget int, search bool, spanCap, cacheSize int, cacheTTL time.Duration,
	traceBuf, digestSize int, otlpFile, otlpEndpoint string,
	chaseWorkers int, pool bool, maxBatch, batchFanout int,
	tsResolution, tsRetention time.Duration, alertRules string,
	obsFlags *cliutil.ObsFlags) error {
	// The server always runs instrumented — /metrics is its point — so
	// the registry does not depend on the -stats/-trace-json flags.
	reg := obs.New()
	reg.SetSpanCap(spanCap)
	if err := obsFlags.StartPprof(); err != nil {
		return err
	}
	// Runtime telemetry (goroutines, heap, GC) lands in process.* gauges
	// on a ticker, so /metrics scrapes see live values between requests.
	stopSampler := obs.StartRuntimeSampler(reg, 10*time.Second)
	defer stopSampler()

	// OTLP export is off unless a sink is named; the exporter batches on
	// its own goroutine and the serve path only ever does a non-blocking
	// hand-off (a slow sink drops records into obs.export_dropped).
	exporter, err := obs.NewExporter(obs.ExporterConfig{
		Reg:      reg,
		FilePath: otlpFile,
		Endpoint: otlpEndpoint,
	})
	if err != nil {
		return err
	}
	defer func() {
		if err := exporter.Close(); err != nil {
			logger.Error("otlp exporter close failed", "err", err)
		}
	}()

	// Continuous telemetry: the tsdb ring samples the registry every
	// -ts-resolution tick and the watchdog evaluates -alert-rules
	// against the retained history. -ts-resolution 0 turns both off —
	// the nil store and nil watchdog are valid no-op values everywhere.
	store := tsdb.New(tsdb.Config{
		Resolution: tsResolution,
		Retention:  tsRetention,
		Reg:        reg,
	})
	var watchdog *tsdb.Watchdog
	if alertRules != "" {
		if store == nil {
			return fmt.Errorf("-alert-rules needs time-series history; raise -ts-resolution above 0")
		}
		text, err := os.ReadFile(alertRules)
		if err != nil {
			return err
		}
		rules, err := tsdb.ParseRules(string(text))
		if err != nil {
			return fmt.Errorf("%s: %v", alertRules, err)
		}
		if len(rules) == 0 {
			return fmt.Errorf("%s: no rules (comments and blank lines only)", alertRules)
		}
		watchdog = tsdb.NewWatchdog(store, rules, reg, nil)
		logger.Info("watchdog armed", "rules", len(rules), "file", alertRules,
			"tick", tsResolution.String())
	}

	srv := serve.New(serve.Config{
		Reg:             reg,
		Logger:          logger,
		DefaultDeadline: deadline,
		MaxDeadline:     maxDeadline,
		SlowQuery:       slow,
		ChaseBudget:     budget,
		SearchFallback:  search,
		CacheSize:       cacheSize,
		CacheTTL:        cacheTTL,
		TraceBuffer:     traceBuf,
		DigestSize:      digestSize,
		Exporter:        exporter,
		ChaseWorkers:    chaseWorkers,
		PoolDisabled:    !pool,
		MaxBatch:        maxBatch,
		BatchFanout:     batchFanout,
		TSDB:            store,
		Watchdog:        watchdog,
	})
	// Alert transitions mirror into the server's flight recorder so
	// /debug/traces interleaves them with the requests that caused them.
	watchdog.SetRecorder(srv.Recorder())
	stopTelemetry := tsdb.StartLoop(reg, store, watchdog, tsResolution)
	defer stopTelemetry()
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv.SetReady(true)
	logger.Info("listening", "addr", ln.Addr().String())

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		logger.Info("shutting down", "reason", "signal")
		srv.SetReady(false)
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shCtx); err != nil {
			return err
		}
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	}
	return obsFlags.Finish(reg)
}
