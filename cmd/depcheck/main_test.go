package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"indfd/internal/obs"
)

// updateGolden regenerates the golden files instead of comparing (the
// Lemma 7.2 trace-golden convention):
//
//	go test ./cmd/depcheck/ -run TestExplainLemma72DOTGolden -update
var updateGolden = flag.Bool("update", false, "rewrite golden files")

const depFile = `
schema CUST(CID, NAME)
schema ORD(OID, CID)
CUST: CID -> NAME
ORD[CID] <= CUST[CID]
`

func setup(t *testing.T, custCSV, ordCSV string) (depPath, dataDir string) {
	t.Helper()
	dir := t.TempDir()
	depPath = filepath.Join(dir, "schema.dep")
	if err := os.WriteFile(depPath, []byte(depFile), 0o644); err != nil {
		t.Fatal(err)
	}
	dataDir = filepath.Join(dir, "data")
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, content := range map[string]string{"CUST.csv": custCSV, "ORD.csv": ordCSV} {
		if err := os.WriteFile(filepath.Join(dataDir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return depPath, dataDir
}

func TestCleanData(t *testing.T) {
	dep, dir := setup(t, "CID,NAME\nc1,ann\n", "OID,CID\no1,c1\n")
	var out bytes.Buffer
	code, err := run(&out, dep, dir, "", false, false, false, "text", 0, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 || !strings.Contains(out.String(), "OK:") {
		t.Errorf("clean data: code %d, output %q", code, out.String())
	}
}

func TestViolationsAndRepair(t *testing.T) {
	dep, dir := setup(t, "CID,NAME\nc1,ann\n", "OID,CID\no1,c1\no2,c9\n")
	repairDir := filepath.Join(t.TempDir(), "fixed")
	var out bytes.Buffer
	code, err := run(&out, dep, dir, repairDir, false, false, false, "text", 0, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 3 {
		t.Errorf("code = %d, want 3", code)
	}
	if !strings.Contains(out.String(), "no witness") || !strings.Contains(out.String(), "repaired: 1 tuple(s) added") {
		t.Errorf("output:\n%s", out.String())
	}
	// The repaired data passes a second check.
	var out2 bytes.Buffer
	code, err = run(&out2, dep, repairDir, "", false, false, false, "text", 0, nil)
	if err != nil {
		t.Fatalf("re-check: %v", err)
	}
	if code != 0 {
		t.Errorf("repaired data still fails:\n%s", out2.String())
	}
}

func TestAdvise(t *testing.T) {
	dep, _ := setup(t, "CID,NAME\n", "OID,CID\n")
	var out bytes.Buffer
	code, err := run(&out, dep, "", "", true, false, false, "text", 256, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 || !strings.Contains(out.String(), "keys of CUST: {CID}") {
		t.Errorf("advice output wrong (code %d):\n%s", code, out.String())
	}
}

func TestErrors(t *testing.T) {
	if _, err := run(&bytes.Buffer{}, "", "", "", false, false, false, "text", 0, nil); err == nil {
		t.Errorf("missing -deps should error")
	}
	dep, _ := setup(t, "CID,NAME\n", "OID,CID\n")
	if _, err := run(&bytes.Buffer{}, dep, "", "", false, false, false, "text", 0, nil); err == nil {
		t.Errorf("missing -data without -advise should error")
	}
	if _, err := run(&bytes.Buffer{}, dep, "/nonexistent-dir", "", false, false, false, "text", 0, nil); err == nil {
		t.Errorf("bad data dir should error")
	}
	if _, err := run(&bytes.Buffer{}, "/nonexistent.dep", "", "", true, false, false, "text", 0, nil); err == nil {
		t.Errorf("bad deps path should error")
	}
}

// TestExplainLemma72Text answers the Lemma 7.2 query (testdata mirrors
// counterex.NewSection7(2)) in text mode: the verdict is yes via the
// chase, and the derivation's node lines and goal line are printed.
func TestExplainLemma72Text(t *testing.T) {
	var out bytes.Buffer
	code, err := run(&out, filepath.Join("testdata", "lemma72.dep"), "", "", false, true, false, "text", 1024, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	if code != 0 {
		t.Fatalf("code = %d, output:\n%s", code, got)
	}
	for _, want := range []string{
		"? F: A -> C  [unrestricted]",
		"verdict: yes  (engine chase)",
		"derivation of F: A -> C",
		"seed F(",
		"goal holds:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestExplainLemma72DOTGolden pins depcheck -explain -format dot on the
// Lemma 7.2 instance byte for byte: the chase is deterministic, so the
// derivation DAG — leaves the two seed F tuples, internal nodes the
// FD/IND firings of Σ — renders identically on every run.
func TestExplainLemma72DOTGolden(t *testing.T) {
	var out bytes.Buffer
	code, err := run(&out, filepath.Join("testdata", "lemma72.dep"), "", "", false, true, false, "dot", 1024, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Fatalf("code = %d, output:\n%s", code, out.String())
	}
	got := out.String()
	path := filepath.Join("testdata", "lemma72.dot.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if got != string(want) {
		t.Errorf("dot output diverged from %s (re-run with -update if intended):\ngot:\n%s\nwant:\n%s",
			path, got, want)
	}
}

// TestExplainErrors covers the -explain failure modes: a bad format, a
// file with no query, and dot on an answer with no chase derivation.
func TestExplainErrors(t *testing.T) {
	dep, _ := setup(t, "CID,NAME\n", "OID,CID\n")
	if _, err := run(&bytes.Buffer{}, dep, "", "", false, true, false, "svg", 0, nil); err == nil {
		t.Errorf("bad -format should error")
	}
	if _, err := run(&bytes.Buffer{}, dep, "", "", false, true, false, "text", 0, nil); err == nil {
		t.Errorf("-explain without queries should error")
	}
	// An FD-only query answers via the fd engine (no chase derivation):
	// text mode prints the Armstrong proof, dot mode errors.
	qdep := filepath.Join(t.TempDir(), "q.dep")
	if err := os.WriteFile(qdep, []byte("schema R(A, B)\nR: A -> B\n? R: A -> B\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := run(&out, qdep, "", "", false, true, false, "text", 0, nil); err != nil {
		t.Fatalf("fd explain: %v", err)
	}
	if !strings.Contains(out.String(), "verdict: yes  (engine fd)") {
		t.Errorf("fd explain output:\n%s", out.String())
	}
	if _, err := run(&bytes.Buffer{}, qdep, "", "", false, true, false, "dot", 0, nil); err == nil {
		t.Errorf("dot without a chase derivation should error")
	}
}

func TestRunInstrumented(t *testing.T) {
	// A violating dataset with a repair, fully instrumented: the registry
	// collects lint check counters and chase repair counters, and the
	// advise pass hangs its probe chases under one span.
	dep, dir := setup(t, "CID,NAME\nc1,ann\n", "OID,CID\no1,c1\no2,c9\n")
	repairDir := filepath.Join(t.TempDir(), "fixed")
	reg := obs.New()
	var out bytes.Buffer
	code, err := run(&out, dep, dir, repairDir, true, false, false, "text", 256, reg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 3 {
		t.Errorf("code = %d, want 3", code)
	}
	snap := reg.Snapshot()
	if snap.Counters["lint.deps_checked"] != 2 || snap.Counters["lint.violations"] != 1 {
		t.Errorf("lint counters wrong: %v", snap.Counters)
	}
	if snap.Counters["chase.tuples_created"] == 0 {
		t.Errorf("advise/repair chases left no chase counters: %v", snap.Counters)
	}
	var names []string
	for _, sp := range snap.Spans {
		names = append(names, sp.Name)
	}
	joined := strings.Join(names, " ")
	if !strings.Contains(joined, "depcheck.advise") || !strings.Contains(joined, "lint.check") {
		t.Errorf("root spans = %v", names)
	}
	for _, sp := range snap.Spans {
		if sp.Name == "depcheck.advise" && len(sp.Children) == 0 {
			t.Errorf("advise span has no probe children")
		}
	}
}

// TestProfileLemma72 answers the Lemma 7.2 query with -profile: the
// chase decides it, and the per-dependency cost table attributes
// firings to the members of Σ that the derivation uses.
func TestProfileLemma72(t *testing.T) {
	var out bytes.Buffer
	code, err := run(&out, filepath.Join("testdata", "lemma72.dep"), "", "", false, false, true, "text", 1024, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	if code != 0 {
		t.Fatalf("code = %d, output:\n%s", code, got)
	}
	for _, want := range []string{
		"? F: A -> C  [unrestricted]",
		"verdict: yes  (engine chase)",
		"KIND", "FIRINGS", "SCANNED", "DEPENDENCY",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestProfileErrors covers -profile failure modes: no queries in the
// file, and the no-profile note for engines that report none.
func TestProfileErrors(t *testing.T) {
	dep, _ := setup(t, "CID,NAME\n", "OID,CID\n")
	if _, err := run(&bytes.Buffer{}, dep, "", "", false, false, true, "text", 0, nil); err == nil {
		t.Errorf("-profile without queries should error")
	}
	// An FD-only query answers via the fd engine, which has no profile.
	qdep := filepath.Join(t.TempDir(), "q.dep")
	if err := os.WriteFile(qdep, []byte("schema R(A, B)\nR: A -> B\n? R: A -> B\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := run(&out, qdep, "", "", false, false, true, "text", 0, nil); err != nil {
		t.Fatalf("fd profile: %v", err)
	}
	if !strings.Contains(out.String(), "no per-dependency profile") {
		t.Errorf("fd profile output:\n%s", out.String())
	}
}
