package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"indfd/internal/obs"
)

const depFile = `
schema CUST(CID, NAME)
schema ORD(OID, CID)
CUST: CID -> NAME
ORD[CID] <= CUST[CID]
`

func setup(t *testing.T, custCSV, ordCSV string) (depPath, dataDir string) {
	t.Helper()
	dir := t.TempDir()
	depPath = filepath.Join(dir, "schema.dep")
	if err := os.WriteFile(depPath, []byte(depFile), 0o644); err != nil {
		t.Fatal(err)
	}
	dataDir = filepath.Join(dir, "data")
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, content := range map[string]string{"CUST.csv": custCSV, "ORD.csv": ordCSV} {
		if err := os.WriteFile(filepath.Join(dataDir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return depPath, dataDir
}

func TestCleanData(t *testing.T) {
	dep, dir := setup(t, "CID,NAME\nc1,ann\n", "OID,CID\no1,c1\n")
	var out bytes.Buffer
	code, err := run(&out, dep, dir, "", false, 0, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 || !strings.Contains(out.String(), "OK:") {
		t.Errorf("clean data: code %d, output %q", code, out.String())
	}
}

func TestViolationsAndRepair(t *testing.T) {
	dep, dir := setup(t, "CID,NAME\nc1,ann\n", "OID,CID\no1,c1\no2,c9\n")
	repairDir := filepath.Join(t.TempDir(), "fixed")
	var out bytes.Buffer
	code, err := run(&out, dep, dir, repairDir, false, 0, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 3 {
		t.Errorf("code = %d, want 3", code)
	}
	if !strings.Contains(out.String(), "no witness") || !strings.Contains(out.String(), "repaired: 1 tuple(s) added") {
		t.Errorf("output:\n%s", out.String())
	}
	// The repaired data passes a second check.
	var out2 bytes.Buffer
	code, err = run(&out2, dep, repairDir, "", false, 0, nil)
	if err != nil {
		t.Fatalf("re-check: %v", err)
	}
	if code != 0 {
		t.Errorf("repaired data still fails:\n%s", out2.String())
	}
}

func TestAdvise(t *testing.T) {
	dep, _ := setup(t, "CID,NAME\n", "OID,CID\n")
	var out bytes.Buffer
	code, err := run(&out, dep, "", "", true, 256, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 || !strings.Contains(out.String(), "keys of CUST: {CID}") {
		t.Errorf("advice output wrong (code %d):\n%s", code, out.String())
	}
}

func TestErrors(t *testing.T) {
	if _, err := run(&bytes.Buffer{}, "", "", "", false, 0, nil); err == nil {
		t.Errorf("missing -deps should error")
	}
	dep, _ := setup(t, "CID,NAME\n", "OID,CID\n")
	if _, err := run(&bytes.Buffer{}, dep, "", "", false, 0, nil); err == nil {
		t.Errorf("missing -data without -advise should error")
	}
	if _, err := run(&bytes.Buffer{}, dep, "/nonexistent-dir", "", false, 0, nil); err == nil {
		t.Errorf("bad data dir should error")
	}
	if _, err := run(&bytes.Buffer{}, "/nonexistent.dep", "", "", true, 0, nil); err == nil {
		t.Errorf("bad deps path should error")
	}
}

func TestRunInstrumented(t *testing.T) {
	// A violating dataset with a repair, fully instrumented: the registry
	// collects lint check counters and chase repair counters, and the
	// advise pass hangs its probe chases under one span.
	dep, dir := setup(t, "CID,NAME\nc1,ann\n", "OID,CID\no1,c1\no2,c9\n")
	repairDir := filepath.Join(t.TempDir(), "fixed")
	reg := obs.New()
	var out bytes.Buffer
	code, err := run(&out, dep, dir, repairDir, true, 256, reg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 3 {
		t.Errorf("code = %d, want 3", code)
	}
	snap := reg.Snapshot()
	if snap.Counters["lint.deps_checked"] != 2 || snap.Counters["lint.violations"] != 1 {
		t.Errorf("lint counters wrong: %v", snap.Counters)
	}
	if snap.Counters["chase.tuples_created"] == 0 {
		t.Errorf("advise/repair chases left no chase counters: %v", snap.Counters)
	}
	var names []string
	for _, sp := range snap.Spans {
		names = append(names, sp.Name)
	}
	joined := strings.Join(names, " ")
	if !strings.Contains(joined, "depcheck.advise") || !strings.Contains(joined, "lint.check") {
		t.Errorf("root spans = %v", names)
	}
	for _, sp := range snap.Spans {
		if sp.Name == "depcheck.advise" && len(sp.Children) == 0 {
			t.Errorf("advise span has no probe children")
		}
	}
}
