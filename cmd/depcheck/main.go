// Command depcheck checks a concrete database (a directory of CSV files,
// one per relation) against the dependencies of a .dep file, reports
// every violation with the offending tuples, optionally repairs
// referential-integrity violations by chasing the missing tuples in,
// optionally prints design advice (derived keys, foreign keys, forced
// column equalities, finite-only consequences, redundant declarations),
// and with -explain answers the file's implication queries with their
// evidence: a formal ind/fd proof, the chase's provenance derivation
// DAG (as text or Graphviz dot via -format), or a counterexample. With
// -profile each query's answer is followed by its per-dependency cost
// table — which members of Σ fired, how many tuples they produced and
// scanned, and where the engine's time went — hottest first.
//
// Usage:
//
//	depcheck -deps schema.dep -data ./csvdir [-repair ./fixed] [-advise]
//	         [-explain] [-format text|dot] [-profile]
//	         [-stats] [-trace-json FILE] [-pprof ADDR] [-memprofile FILE]
//
// With -stats, a metrics and span report (lint.* check counters plus the
// chase.* counters of any repair or advice chases) goes to stderr;
// -trace-json FILE writes the span tree as JSON, -pprof ADDR serves
// net/http/pprof, and -memprofile FILE writes an end-of-run heap
// profile.
//
// Exit status: 0 when the data satisfies every dependency, 3 when
// violations were found, 1 on errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"indfd/internal/chase"
	"indfd/internal/cliutil"
	"indfd/internal/core"
	"indfd/internal/data"
	"indfd/internal/lint"
	"indfd/internal/obs"
	"indfd/internal/parser"
)

func main() {
	depsPath := flag.String("deps", "", "path to the .dep file (schema + dependencies)")
	dataDir := flag.String("data", "", "directory of <relation>.csv files")
	repairDir := flag.String("repair", "", "write a repaired copy of the data to this directory")
	advise := flag.Bool("advise", false, "print design advice for the dependency set")
	explain := flag.Bool("explain", false, "answer the .dep file's queries with proofs/derivations/counterexamples")
	profile := flag.Bool("profile", false, "answer the .dep file's queries with per-dependency cost tables")
	format := flag.String("format", "text", "derivation output format for -explain: text or dot")
	budget := flag.Int("budget", 1024, "chase tuple budget for repair and advice")
	obsFlags := cliutil.Register(flag.CommandLine)
	flag.Parse()
	if err := obsFlags.StartPprof(); err != nil {
		fmt.Fprintln(os.Stderr, "depcheck:", err)
		os.Exit(1)
	}

	reg := obsFlags.Registry()
	code, err := run(os.Stdout, *depsPath, *dataDir, *repairDir, *advise, *explain, *profile, *format, *budget, reg)
	if ferr := obsFlags.Finish(reg); err == nil {
		err = ferr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "depcheck:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run(w io.Writer, depsPath, dataDir, repairDir string, advise, explain, profile bool, format string, budget int, reg *obs.Registry) (int, error) {
	if depsPath == "" {
		return 1, fmt.Errorf("-deps is required")
	}
	if format != "text" && format != "dot" {
		return 1, fmt.Errorf("-format must be text or dot, got %q", format)
	}
	f, err := os.Open(depsPath)
	if err != nil {
		return 1, err
	}
	file, err := parser.Parse(f)
	f.Close()
	if err != nil {
		return 1, err
	}
	opt := chase.Options{MaxTuples: budget, Obs: reg}

	if explain {
		if err := runExplain(w, file, format, budget, reg); err != nil {
			return 1, err
		}
	}

	if profile {
		if err := runProfile(w, file, budget, reg); err != nil {
			return 1, err
		}
	}

	if advise {
		// Parent every candidate-probe chase under one advise span so the
		// trace stays one tree rather than hundreds of roots.
		aSp := reg.StartSpan("depcheck.advise")
		adv, err := lint.Advise(file.DB, file.Sigma, chase.Options{MaxTuples: budget, Obs: reg, Span: aSp})
		aSp.End()
		if err != nil {
			return 1, err
		}
		fmt.Fprintln(w, "=== design advice ===")
		fmt.Fprintln(w, adv)
	}

	if dataDir == "" {
		if !advise && !explain && !profile {
			return 1, fmt.Errorf("nothing to do: pass -data, -advise, -explain and/or -profile")
		}
		return 0, nil
	}
	db, err := data.LoadDir(file.DB, dataDir)
	if err != nil {
		return 1, err
	}
	violations, err := lint.CheckObs(db, file.Sigma, reg)
	if err != nil {
		return 1, err
	}
	if len(violations) == 0 {
		fmt.Fprintf(w, "OK: %d tuples satisfy all %d dependencies\n", db.Size(), len(file.Sigma))
		return 0, nil
	}
	fmt.Fprintf(w, "%d violation(s):\n", len(violations))
	for _, v := range violations {
		fmt.Fprintf(w, "  %v\n", v)
	}
	if repairDir != "" {
		repaired, added, err := lint.Repair(db, file.Sigma, opt)
		if err != nil {
			return 1, fmt.Errorf("repair failed: %w", err)
		}
		if err := data.SaveDir(repaired, repairDir); err != nil {
			return 1, err
		}
		fmt.Fprintf(w, "repaired: %d tuple(s) added, written to %s\n", added, repairDir)
	}
	return 3, nil
}

// runProfile answers every query of the .dep file with profiling on and
// prints each verdict followed by the per-dependency cost table —
// firings, tuples produced and scanned, scan time and rounds active per
// member of Σ, hottest first. Queries the polynomial fd/unary closures
// answer carry no profile (those engines do not iterate per member).
func runProfile(w io.Writer, file *parser.File, budget int, reg *obs.Registry) error {
	if len(file.Queries) == 0 {
		return fmt.Errorf("-profile needs at least one query (a `? goal` line) in the .dep file")
	}
	sys := core.NewSystem(file.DB)
	if err := sys.Add(file.Sigma...); err != nil {
		return err
	}
	opt := core.Options{ChaseMaxTuples: budget, Profile: true, Obs: reg}
	for _, q := range file.Queries {
		var a core.Answer
		var err error
		if q.Mode == parser.Finite {
			a, err = sys.ImpliesFinite(q.Goal, opt)
		} else {
			a, err = sys.Implies(q.Goal, opt)
		}
		if err != nil {
			return err
		}
		mode := "unrestricted"
		if q.Mode == parser.Finite {
			mode = "finite"
		}
		fmt.Fprintf(w, "? %v  [%s]\n", q.Goal, mode)
		fmt.Fprintf(w, "verdict: %v  (engine %s)\n", a.Verdict, a.Engine)
		if a.DepProfile != nil {
			fmt.Fprint(w, a.DepProfile.Table())
		} else {
			fmt.Fprintf(w, "(engine %s reports no per-dependency profile)\n", a.Engine)
		}
	}
	return nil
}

// runExplain answers every `? goal` / `?fin goal` query of the .dep
// file with its evidence. Text format prints the verdict plus the
// engine's explanation (ind/fd proof, chase derivation, unary
// cardinality cycle, or counterexample); dot format renders the chase's
// derivation DAG in Graphviz syntax and errors on answers that carry no
// derivation (other engines, non-yes verdicts).
func runExplain(w io.Writer, file *parser.File, format string, budget int, reg *obs.Registry) error {
	if len(file.Queries) == 0 {
		return fmt.Errorf("-explain needs at least one query (a `? goal` line) in the .dep file")
	}
	sys := core.NewSystem(file.DB)
	if err := sys.Add(file.Sigma...); err != nil {
		return err
	}
	opt := core.Options{ChaseMaxTuples: budget, Provenance: true, Obs: reg}
	for _, q := range file.Queries {
		a, why, err := sys.Explain(q.Goal, opt, q.Mode == parser.Finite)
		if err != nil {
			return err
		}
		if format == "dot" {
			if a.Derivation == nil {
				return fmt.Errorf("%v: no chase derivation to render as dot (verdict %v, engine %s)",
					q.Goal, a.Verdict, a.Engine)
			}
			fmt.Fprint(w, a.Derivation.DOT())
			continue
		}
		mode := "unrestricted"
		if q.Mode == parser.Finite {
			mode = "finite"
		}
		fmt.Fprintf(w, "? %v  [%s]\n", q.Goal, mode)
		fmt.Fprintf(w, "verdict: %v  (engine %s)\n", a.Verdict, a.Engine)
		if why != "" {
			fmt.Fprintln(w, why)
		}
	}
	return nil
}
