// Command depcheck checks a concrete database (a directory of CSV files,
// one per relation) against the dependencies of a .dep file, reports
// every violation with the offending tuples, optionally repairs
// referential-integrity violations by chasing the missing tuples in, and
// optionally prints design advice (derived keys, foreign keys, forced
// column equalities, finite-only consequences, redundant declarations).
//
// Usage:
//
//	depcheck -deps schema.dep -data ./csvdir [-repair ./fixed] [-advise]
//	         [-stats] [-trace-json FILE] [-pprof ADDR] [-memprofile FILE]
//
// With -stats, a metrics and span report (lint.* check counters plus the
// chase.* counters of any repair or advice chases) goes to stderr;
// -trace-json FILE writes the span tree as JSON, -pprof ADDR serves
// net/http/pprof, and -memprofile FILE writes an end-of-run heap
// profile.
//
// Exit status: 0 when the data satisfies every dependency, 3 when
// violations were found, 1 on errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"indfd/internal/chase"
	"indfd/internal/cliutil"
	"indfd/internal/data"
	"indfd/internal/lint"
	"indfd/internal/obs"
	"indfd/internal/parser"
)

func main() {
	depsPath := flag.String("deps", "", "path to the .dep file (schema + dependencies)")
	dataDir := flag.String("data", "", "directory of <relation>.csv files")
	repairDir := flag.String("repair", "", "write a repaired copy of the data to this directory")
	advise := flag.Bool("advise", false, "print design advice for the dependency set")
	budget := flag.Int("budget", 1024, "chase tuple budget for repair and advice")
	obsFlags := cliutil.Register(flag.CommandLine)
	flag.Parse()
	if err := obsFlags.StartPprof(); err != nil {
		fmt.Fprintln(os.Stderr, "depcheck:", err)
		os.Exit(1)
	}

	reg := obsFlags.Registry()
	code, err := run(os.Stdout, *depsPath, *dataDir, *repairDir, *advise, *budget, reg)
	if ferr := obsFlags.Finish(reg); err == nil {
		err = ferr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "depcheck:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run(w io.Writer, depsPath, dataDir, repairDir string, advise bool, budget int, reg *obs.Registry) (int, error) {
	if depsPath == "" {
		return 1, fmt.Errorf("-deps is required")
	}
	f, err := os.Open(depsPath)
	if err != nil {
		return 1, err
	}
	file, err := parser.Parse(f)
	f.Close()
	if err != nil {
		return 1, err
	}
	opt := chase.Options{MaxTuples: budget, Obs: reg}

	if advise {
		// Parent every candidate-probe chase under one advise span so the
		// trace stays one tree rather than hundreds of roots.
		aSp := reg.StartSpan("depcheck.advise")
		adv, err := lint.Advise(file.DB, file.Sigma, chase.Options{MaxTuples: budget, Obs: reg, Span: aSp})
		aSp.End()
		if err != nil {
			return 1, err
		}
		fmt.Fprintln(w, "=== design advice ===")
		fmt.Fprintln(w, adv)
	}

	if dataDir == "" {
		if !advise {
			return 1, fmt.Errorf("nothing to do: pass -data and/or -advise")
		}
		return 0, nil
	}
	db, err := data.LoadDir(file.DB, dataDir)
	if err != nil {
		return 1, err
	}
	violations, err := lint.CheckObs(db, file.Sigma, reg)
	if err != nil {
		return 1, err
	}
	if len(violations) == 0 {
		fmt.Fprintf(w, "OK: %d tuples satisfy all %d dependencies\n", db.Size(), len(file.Sigma))
		return 0, nil
	}
	fmt.Fprintf(w, "%d violation(s):\n", len(violations))
	for _, v := range violations {
		fmt.Fprintf(w, "  %v\n", v)
	}
	if repairDir != "" {
		repaired, added, err := lint.Repair(db, file.Sigma, opt)
		if err != nil {
			return 1, fmt.Errorf("repair failed: %w", err)
		}
		if err := data.SaveDir(repaired, repairDir); err != nil {
			return 1, err
		}
		fmt.Fprintf(w, "repaired: %d tuple(s) added, written to %s\n", added, repairDir)
	}
	return 3, nil
}
