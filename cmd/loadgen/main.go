// Command loadgen closes the telemetry loop: an open-loop constant-rate
// load generator for a running depserve, with per-route latency
// histograms, a JSON report, and an SLO gate that turns "is the service
// fast enough" into a CI exit code.
//
//	loadgen -target http://127.0.0.1:8080 -qps 200 -duration 10s \
//	        -warmup 2s -slo 'p99<25ms,errs<0.1%' -report SLO_report.json
//
// The generator is open-loop: requests fire on a fixed schedule whether
// or not earlier ones have returned, so a slow server accumulates
// in-flight work and the measured latency includes queueing — the
// honest client-side view (a closed loop would let the server pace the
// test and hide its own slowness; see the coordinated-omission
// literature). Each request is one goroutine; latencies land in the
// same log₂ histograms the server itself uses, and quantiles are
// estimated from the buckets with linear interpolation.
//
// The workload is a JSON-lines file of named scenarios (route, body,
// weight); without -workload a built-in mix runs: an IND-chain
// implication, an FD proof via /v1/explain, the benchws IND spiral
// under a small budget, the wide-FD tableau, a schema registration and
// a named-schema batch — the same instance families the committed
// engine baseline measures, now measured end-to-end through the HTTP
// layer.
//
// Two scenario kinds get special handling. "register_schema" scenarios
// default to the PUT method and are additionally fired once,
// synchronously, before warmup — so scenarios that reference a
// registered schema by name never race their own registration — and
// then keep firing inside the weighted mix, exercising version bumps
// and the footprint cache sweep under load. "batch" scenarios default
// to the /v1/batch route; their bodies pose many goals per request, so
// their latency is a per-batch figure, not per-goal.
//
// Besides latency, the report records the server's allocation price:
// the target's cumulative heap-allocation gauge is scraped from
// /metrics before and after the measured window and the delta lands in
// the report as server_allocs and allocs_per_request. With the chase
// engine pool on (depserve's default), the per-request figure is the
// HTTP/JSON floor — the engines themselves run allocation-free on warm
// repeats.
//
// SLOs are a comma-separated clause list over the whole run:
// p50/p90/p95/p99/mean/max compare against a duration ("p99<25ms"),
// errs against a percentage of non-2xx responses ("errs<0.1%"). Any
// breached clause makes loadgen exit 1, so `make slo-gate` fails the
// build. -baseline compares the fresh report's per-route p99s against a
// committed report (BENCH_slo.json) and fails past -tolerance; CI runs
// that step as advisory, since shared runners are slower and noisier
// than the machine that produced the baseline.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"indfd/internal/benchws"
	"indfd/internal/deps"
	"indfd/internal/obs"
	"indfd/internal/schema"
	"indfd/internal/slo"
)

func main() {
	cfg := config{}
	flag.StringVar(&cfg.Target, "target", "http://127.0.0.1:8080", "base URL of the depserve under test")
	flag.Float64Var(&cfg.QPS, "qps", 100, "request rate (open loop; requests fire on schedule regardless of completions)")
	flag.DurationVar(&cfg.Duration, "duration", 10*time.Second, "measured run length")
	flag.DurationVar(&cfg.Warmup, "warmup", 0, "unmeasured warmup at the same rate (caches, page faults, JIT-free but honest)")
	flag.StringVar(&cfg.WorkloadPath, "workload", "", "JSON-lines scenario file (default: built-in benchws-derived mix)")
	flag.StringVar(&cfg.SLO, "slo", "", "comma-separated clauses, e.g. 'p99<25ms,errs<0.1%'; any breach exits 1")
	flag.StringVar(&cfg.ReportPath, "report", "", "write the JSON report here ('-' or empty: stdout)")
	flag.StringVar(&cfg.BaselinePath, "baseline", "", "committed report to compare per-route p99s against")
	flag.Float64Var(&cfg.Tolerance, "tolerance", 2.0, "max fresh/baseline p99 ratio before the comparison fails")
	flag.DurationVar(&cfg.Timeout, "timeout", 5*time.Second, "per-request timeout")
	flag.DurationVar(&cfg.ReadyTimeout, "ready-timeout", 10*time.Second, "how long to poll /readyz before giving up (0: skip the poll)")
	flag.Parse()

	report, err := run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	out = append(out, '\n')
	if cfg.ReportPath != "" && cfg.ReportPath != "-" {
		if err := os.WriteFile(cfg.ReportPath, out, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		fmt.Printf("loadgen: report written to %s\n", cfg.ReportPath)
	} else {
		os.Stdout.Write(out) //nolint:errcheck
	}
	summarize(report)
	if len(report.Breaches) > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: SLO breached:\n  %s\n", strings.Join(report.Breaches, "\n  "))
		os.Exit(1)
	}
	if cfg.SLO != "" {
		fmt.Printf("loadgen: SLO %q held\n", cfg.SLO)
	}
}

type config struct {
	Target       string
	QPS          float64
	Duration     time.Duration
	Warmup       time.Duration
	WorkloadPath string
	SLO          string
	ReportPath   string
	BaselinePath string
	Tolerance    float64
	Timeout      time.Duration
	ReadyTimeout time.Duration
}

// scenario is one weighted request shape. Method defaults to POST when
// a body is present, GET otherwise.
type scenario struct {
	Name string `json:"name"`
	// Kind marks scenarios with special handling: "register_schema"
	// (method defaults to PUT; fired once before warmup so named-schema
	// scenarios never observe their schema unregistered) and "batch"
	// (route defaults to /v1/batch). Empty for plain request scenarios.
	Kind   string `json:"kind,omitempty"`
	Route  string `json:"route"`
	Method string `json:"method,omitempty"`
	Body   string `json:"body,omitempty"`
	Weight int    `json:"weight,omitempty"`
}

// Scenario kinds with generator-side behavior beyond "send the body".
const (
	kindRegisterSchema = "register_schema"
	kindBatch          = "batch"
)

// normalize applies the kind's defaults and rejects unknown kinds.
func (sc *scenario) normalize() error {
	switch sc.Kind {
	case "":
	case kindRegisterSchema:
		if sc.Method == "" {
			sc.Method = http.MethodPut
		}
	case kindBatch:
		if sc.Route == "" {
			sc.Route = "/v1/batch"
		}
	default:
		return fmt.Errorf("unknown scenario kind %q (want %q or %q)",
			sc.Kind, kindRegisterSchema, kindBatch)
	}
	if sc.Name == "" || sc.Route == "" {
		return fmt.Errorf("scenario needs name and route")
	}
	if sc.Weight <= 0 {
		sc.Weight = 1
	}
	return nil
}

// RouteStats is one scenario's (or the whole run's) latency and error
// summary, quantiles estimated from the log₂ histogram buckets.
type RouteStats struct {
	Count  int64 `json:"count"`
	Errors int64 `json:"errors"`
	P50US  int64 `json:"p50_us"`
	P90US  int64 `json:"p90_us"`
	P95US  int64 `json:"p95_us"`
	P99US  int64 `json:"p99_us"`
	MeanUS int64 `json:"mean_us"`
	MaxUS  int64 `json:"max_us"`
}

// Report is the loadgen run summary — the artifact CI uploads and the
// baseline the next run compares against.
type Report struct {
	Target     string                 `json:"target"`
	QPS        float64                `json:"qps"`
	DurationMS int64                  `json:"duration_ms"`
	WarmupMS   int64                  `json:"warmup_ms,omitempty"`
	Sent       int64                  `json:"sent"`
	Completed  int64                  `json:"completed"`
	Errors     int64                  `json:"errors"`
	ErrorRate  float64                `json:"error_rate"`
	Overall    RouteStats             `json:"overall"`
	Routes     map[string]*RouteStats `json:"routes"`
	// ServerAllocs is the target's heap-allocation count over the
	// measured window (the process_heap_allocs_total gauge scraped from
	// /metrics before and after), and AllocsPerRequest divides it by the
	// completed requests — the steady-state allocation price of one
	// served query, which the chase engine pool drives toward the fixed
	// HTTP/JSON floor. Zero when the target exposes no such gauge.
	ServerAllocs     int64    `json:"server_allocs,omitempty"`
	AllocsPerRequest float64  `json:"allocs_per_request,omitempty"`
	SLO              string   `json:"slo,omitempty"`
	Breaches         []string `json:"breaches,omitempty"`
	// Timeseries is the server's own view of the run: the
	// /debug/timeseries series matching serve.http_latency, scraped
	// after the measured window. The client-side quantiles above and
	// this server-side history into one artifact lets a breach be read
	// from both ends (queueing shows only client-side; a mid-run spike
	// shows only here). Absent when the target keeps no history.
	Timeseries json.RawMessage `json:"timeseries,omitempty"`
}

// run executes the full generator lifecycle: readiness poll, warmup,
// measured run, report, SLO and baseline evaluation. It returns an
// error only for operational failures; SLO breaches come back in the
// report so the caller (main, or a test) decides the exit code.
func run(cfg config) (*Report, error) {
	if cfg.QPS <= 0 {
		return nil, fmt.Errorf("-qps must be positive, got %g", cfg.QPS)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("-duration must be positive, got %v", cfg.Duration)
	}
	clauses, err := parseSLO(cfg.SLO)
	if err != nil {
		return nil, err
	}
	scenarios, err := loadScenarios(cfg.WorkloadPath)
	if err != nil {
		return nil, err
	}
	client := &http.Client{Timeout: cfg.Timeout}
	if cfg.ReadyTimeout > 0 {
		if err := waitReady(client, cfg.Target, cfg.ReadyTimeout); err != nil {
			return nil, err
		}
	}

	// Registered schemas are preloaded before any load fires — a batch
	// scenario drawn before its register_schema scenario would otherwise
	// 404 on a fresh server.
	if err := preloadSchemas(client, cfg.Target, scenarios); err != nil {
		return nil, err
	}

	if cfg.Warmup > 0 {
		// Warmup fills the answer cache and faults in code paths; its
		// samples land in a throwaway registry.
		fire(client, cfg, scenarios, cfg.Warmup, obs.New())
	}
	allocsBefore, haveAllocs := scrapeServerAllocs(client, cfg.Target)
	reg := obs.New()
	sent := fire(client, cfg, scenarios, cfg.Duration, reg)

	report := buildReport(cfg, reg, sent)
	if haveAllocs {
		if after, ok := scrapeServerAllocs(client, cfg.Target); ok && after >= allocsBefore {
			report.ServerAllocs = after - allocsBefore
			if report.Completed > 0 {
				report.AllocsPerRequest = float64(report.ServerAllocs) / float64(report.Completed)
			}
		}
	}
	report.Timeseries = scrapeTimeseries(client, cfg.Target, cfg.Duration+cfg.Warmup)
	report.SLO = cfg.SLO
	report.Breaches = evalSLO(clauses, report)
	if cfg.BaselinePath != "" {
		breaches, err := compareBaseline(cfg.BaselinePath, cfg.Tolerance, report)
		if err != nil {
			return nil, err
		}
		report.Breaches = append(report.Breaches, breaches...)
	}
	return report, nil
}

// fire runs the open loop for d at cfg.QPS over the weighted scenarios,
// recording latencies into reg, and returns how many requests were
// launched. It waits for in-flight requests to finish (bounded by the
// per-request timeout) so every launched request is also counted.
func fire(client *http.Client, cfg config, scenarios []scenario, d time.Duration, reg *obs.Registry) int64 {
	interval := time.Duration(float64(time.Second) / cfg.QPS)
	if interval <= 0 {
		interval = time.Microsecond
	}
	totalWeight := 0
	for _, sc := range scenarios {
		totalWeight += sc.Weight
	}
	var wg sync.WaitGroup
	var sent atomic.Int64
	deadline := time.Now().Add(d)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for now := time.Now(); now.Before(deadline); now = <-ticker.C {
		sc := pick(scenarios, totalWeight)
		sent.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			doRequest(client, cfg.Target, sc, reg)
		}()
	}
	wg.Wait()
	return sent.Load()
}

// pick draws one scenario by weight.
func pick(scenarios []scenario, totalWeight int) scenario {
	n := rand.IntN(totalWeight)
	for _, sc := range scenarios {
		if n < sc.Weight {
			return sc
		}
		n -= sc.Weight
	}
	return scenarios[len(scenarios)-1]
}

// doRequest issues one request and records its latency (microseconds)
// and outcome. Any transport error or non-2xx status counts as an
// error — a 503 deadline kill is a latency SLO's concern too, but it
// is first of all not a served answer.
func doRequest(client *http.Client, target string, sc scenario, reg *obs.Registry) {
	method := sc.Method
	if method == "" {
		if sc.Body != "" {
			method = http.MethodPost
		} else {
			method = http.MethodGet
		}
	}
	var body *bytes.Reader
	if sc.Body != "" {
		body = bytes.NewReader([]byte(sc.Body))
	} else {
		body = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, target+sc.Route, body)
	if err != nil {
		reg.Counter(obs.MetricName("loadgen.errors", "scenario", sc.Name)).Inc()
		return
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := client.Do(req)
	elapsed := time.Since(start).Microseconds()
	ok := err == nil && resp.StatusCode >= 200 && resp.StatusCode < 300
	if err == nil {
		// Drain so the transport reuses connections; a generator that
		// opens a new connection per request measures the TCP stack.
		var sink [512]byte
		for {
			if _, rerr := resp.Body.Read(sink[:]); rerr != nil {
				break
			}
		}
		resp.Body.Close()
	}
	reg.Histogram(obs.MetricName("loadgen.latency_us", "scenario", sc.Name)).Observe(elapsed)
	if !ok {
		reg.Counter(obs.MetricName("loadgen.errors", "scenario", sc.Name)).Inc()
	}
}

// preloadSchemas fires every register_schema scenario once,
// synchronously, before the load starts — a batch scenario drawn before
// its register_schema scenario would otherwise 404 on a fresh server. A
// registration the target rejects is warned about, not fatal: every
// named-batch sample then errors during the drive, and the errs SLO
// clause reports the broken target instead of the run dying silently.
func preloadSchemas(client *http.Client, target string, scenarios []scenario) error {
	for _, sc := range scenarios {
		if sc.Kind != kindRegisterSchema {
			continue
		}
		req, err := http.NewRequest(http.MethodPut, target+sc.Route, bytes.NewReader([]byte(sc.Body)))
		if err != nil {
			return fmt.Errorf("preload %s: %v", sc.Name, err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: preload %s: %v\n", sc.Name, err)
			continue
		}
		status := resp.StatusCode
		drainClose(resp)
		if status < 200 || status >= 300 {
			fmt.Fprintf(os.Stderr, "loadgen: preload %s: %s answered %d\n", sc.Name, sc.Route, status)
		}
	}
	return nil
}

// waitReady polls GET /readyz until it answers 200, the server is
// reachable but has no /readyz (404 — not a depserve, but usable), or
// the timeout lapses.
func waitReady(client *http.Client, target string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var lastErr error
	for time.Now().Before(deadline) {
		resp, err := client.Get(target + "/readyz")
		if err == nil {
			drainClose(resp)
			if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusNotFound {
				return nil
			}
			lastErr = fmt.Errorf("/readyz answered %d", resp.StatusCode)
		} else {
			lastErr = err
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("target %s not ready after %v: %v", target, timeout, lastErr)
}

func drainClose(resp *http.Response) {
	var sink [512]byte
	for {
		if _, err := resp.Body.Read(sink[:]); err != nil {
			break
		}
	}
	resp.Body.Close()
}

// scrapeServerAllocs reads the target's cumulative heap-allocation
// count (the process_heap_allocs_total gauge depserve's /metrics
// refreshes on every scrape). Differencing two scrapes around the
// measured window yields the server's allocations per request. A
// target without the gauge (or without /metrics at all) reports
// ok=false and the run simply omits the allocation columns — the
// generator works against any HTTP service, not just depserve.
func scrapeServerAllocs(client *http.Client, target string) (n int64, ok bool) {
	resp, err := client.Get(target + "/metrics")
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, false
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		rest, found := strings.CutPrefix(line, "process_heap_allocs_total ")
		if !found {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return 0, false
		}
		return int64(v), true
	}
	return 0, false
}

// --- report -----------------------------------------------------------------

// buildReport turns the run's registry into the Report: per-scenario
// stats from each latency histogram plus an overall aggregate.
func buildReport(cfg config, reg *obs.Registry, sent int64) *Report {
	snap := reg.Snapshot()
	report := &Report{
		Target:     cfg.Target,
		QPS:        cfg.QPS,
		DurationMS: cfg.Duration.Milliseconds(),
		WarmupMS:   cfg.Warmup.Milliseconds(),
		Sent:       sent,
		Routes:     map[string]*RouteStats{},
	}
	overall := obs.HistogramSnapshot{}
	merged := map[int64]int64{}
	for name, h := range snap.Histograms {
		sc := seriesLabel(name, "scenario")
		if sc == "" {
			continue
		}
		st := statsFrom(h)
		report.Routes[sc] = st
		report.Completed += h.Count
		overall.Count += h.Count
		overall.Sum += h.Sum
		if h.Max > overall.Max {
			overall.Max = h.Max
		}
		for _, b := range h.Buckets {
			merged[b.Le] += b.Count
		}
	}
	les := make([]int64, 0, len(merged))
	for le := range merged {
		les = append(les, le)
	}
	sort.Slice(les, func(i, j int) bool { return les[i] < les[j] })
	for _, le := range les {
		overall.Buckets = append(overall.Buckets, obs.Bucket{Le: le, Count: merged[le]})
	}
	report.Overall = *statsFrom(overall)
	for name, v := range snap.Counters {
		if sc := seriesLabel(name, "scenario"); sc != "" && strings.HasPrefix(name, "loadgen.errors{") {
			if st, ok := report.Routes[sc]; ok {
				st.Errors = v
			}
			report.Errors += v
		}
	}
	report.Overall.Errors = report.Errors
	if report.Completed > 0 {
		report.ErrorRate = float64(report.Errors) / float64(report.Completed)
	}
	return report
}

// statsFrom estimates the quantile set from one histogram snapshot,
// with the shared obs estimator (the same one the server's tsdb uses,
// so client- and server-side quantiles agree by construction).
func statsFrom(h obs.HistogramSnapshot) *RouteStats {
	st := &RouteStats{Count: h.Count, MaxUS: h.Max}
	if h.Count > 0 {
		st.MeanUS = h.Sum / h.Count
	}
	st.P50US = h.Quantile(0.50)
	st.P90US = h.Quantile(0.90)
	st.P95US = h.Quantile(0.95)
	st.P99US = h.Quantile(0.99)
	return st
}

// seriesLabel extracts one label value from an obs.MetricName-encoded
// series name, "" when absent.
func seriesLabel(series, key string) string {
	i := strings.IndexByte(series, '{')
	if i < 0 {
		return ""
	}
	for _, pair := range strings.Split(strings.TrimSuffix(series[i+1:], "}"), `",`) {
		k, v, ok := strings.Cut(pair, `="`)
		if ok && k == key {
			return strings.TrimSuffix(v, `"`)
		}
	}
	return ""
}

func summarize(r *Report) {
	names := make([]string, 0, len(r.Routes))
	for name := range r.Routes {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%-18s %8s %8s %9s %9s %9s %9s\n",
		"scenario", "count", "errors", "p50", "p95", "p99", "max")
	row := func(name string, st *RouteStats) {
		fmt.Printf("%-18s %8d %8d %8dus %8dus %8dus %8dus\n",
			name, st.Count, st.Errors, st.P50US, st.P95US, st.P99US, st.MaxUS)
	}
	for _, name := range names {
		row(name, r.Routes[name])
	}
	row("OVERALL", &r.Overall)
}

// --- SLO --------------------------------------------------------------------

// parseSLO parses "p99<25ms,errs<0.1%"-style clause lists with the
// shared grammar (internal/slo — the same one the depserve watchdog's
// -alert-rules file speaks). Labeled selectors like
// p99{route=/v1/implies}<5ms are valid grammar but rejected here: the
// generator aggregates per scenario, not per server route, so a route
// selector would silently gate on nothing.
func parseSLO(s string) ([]slo.Clause, error) {
	clauses, err := slo.Parse(s)
	if err != nil {
		return nil, err
	}
	for _, c := range clauses {
		if len(c.Labels) > 0 {
			return nil, fmt.Errorf("SLO clause %q: labeled selectors are for the server-side watchdog (-alert-rules); loadgen gates on overall stats only", c.Text)
		}
	}
	return clauses, nil
}

// evalSLO checks every clause against the overall stats and returns a
// message per breach.
func evalSLO(clauses []slo.Clause, r *Report) []string {
	var breaches []string
	get := func(metric string) int64 {
		switch metric {
		case "p50":
			return r.Overall.P50US
		case "p90":
			return r.Overall.P90US
		case "p95":
			return r.Overall.P95US
		case "p99":
			return r.Overall.P99US
		case "mean":
			return r.Overall.MeanUS
		default:
			return r.Overall.MaxUS
		}
	}
	for _, c := range clauses {
		if c.IsErrs() {
			if r.ErrorRate >= c.BoundRate && !(r.ErrorRate == 0 && c.BoundRate == 0) {
				breaches = append(breaches, fmt.Sprintf("%s: error rate %.3f%% (%d/%d) >= %.3f%%",
					c.Text, r.ErrorRate*100, r.Errors, r.Completed, c.BoundRate*100))
			}
			continue
		}
		if got := get(c.Metric); got >= c.BoundUS {
			breaches = append(breaches, fmt.Sprintf("%s: %s = %dus >= %dus",
				c.Text, c.Metric, got, c.BoundUS))
		}
	}
	return breaches
}

// scrapeTimeseries fetches the server-side latency history covering
// the run (GET /debug/timeseries, serve.http_latency series only) for
// the report. Best-effort: a target without the endpoint, with history
// off, or answering garbage yields nil and the report simply omits the
// field.
func scrapeTimeseries(client *http.Client, target string, window time.Duration) json.RawMessage {
	url := fmt.Sprintf("%s/debug/timeseries?match=serve.http_latency&since=%s",
		target, (window + 30*time.Second).String())
	resp, err := client.Get(url)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var body struct {
		Enabled bool `json:"enabled"`
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil || json.Unmarshal(raw, &body) != nil || !body.Enabled {
		return nil
	}
	return json.RawMessage(raw)
}

// compareBaseline loads a committed Report and flags any route whose
// fresh p99 exceeds tolerance × the baseline p99. Routes absent on
// either side are skipped — workload changes are not regressions.
func compareBaseline(path string, tolerance float64, fresh *Report) ([]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return nil, fmt.Errorf("parse baseline %s: %w", path, err)
	}
	var breaches []string
	for name, st := range fresh.Routes {
		bst, ok := base.Routes[name]
		if !ok || bst.P99US <= 0 || st.Count == 0 {
			continue
		}
		ratio := float64(st.P99US) / float64(bst.P99US)
		if ratio > tolerance {
			breaches = append(breaches, fmt.Sprintf(
				"baseline: %s p99 %dus vs %dus (%.2fx > %.2fx)",
				name, st.P99US, bst.P99US, ratio, tolerance))
		}
	}
	sort.Strings(breaches)
	return breaches, nil
}

// --- workload ---------------------------------------------------------------

// loadScenarios reads a JSON-lines workload file; an empty path yields
// the built-in mix.
func loadScenarios(path string) ([]scenario, error) {
	if path == "" {
		scenarios := defaultScenarios()
		for i := range scenarios {
			if err := scenarios[i].normalize(); err != nil {
				return nil, fmt.Errorf("builtin scenario %s: %v", scenarios[i].Name, err)
			}
		}
		return scenarios, nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var scenarios []scenario
	for ln, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var sc scenario
		if err := json.Unmarshal([]byte(line), &sc); err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, ln+1, err)
		}
		if err := sc.normalize(); err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, ln+1, err)
		}
		scenarios = append(scenarios, sc)
	}
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("%s: no scenarios", path)
	}
	return scenarios, nil
}

// defaultScenarios is the built-in mix: the instance families behind
// the committed engine baseline, rendered into the serve API's .dep
// text forms so the generator needs no extra fixture files.
func defaultScenarios() []scenario {
	spiralDB, spiralSigma, spiralGoal := benchws.SpiralInstance(3)
	wideDB, wideSigma, wideGoal := benchws.WideFDInstance(20)
	chainSchema, chainSigma, chainGoals := fdChainInstance(10)
	return []scenario{
		{
			Name:  "implies_ind",
			Route: "/v1/implies",
			Body: impliesBody(
				[]string{"MGR(NAME,DEPT)", "EMP(NAME,DEPT,SAL)"},
				[]string{"MGR[NAME,DEPT] <= EMP[NAME,DEPT]"},
				"MGR[NAME] <= EMP[NAME]", 0),
			Weight: 4,
		},
		{
			Name:  "explain_fd",
			Route: "/v1/explain",
			Body: impliesBody(
				[]string{"R(A,B,C,D)"},
				[]string{"R: A -> B", "R: B -> C", "R: C -> D"},
				"R: A -> D", 0),
			Weight: 3,
		},
		{
			Name:   "implies_spiral",
			Route:  "/v1/implies",
			Body:   renderInstance(spiralDB, spiralSigma, spiralGoal.String(), 200),
			Weight: 2,
		},
		{
			Name:   "implies_widefd",
			Route:  "/v1/implies",
			Body:   renderInstance(wideDB, wideSigma, wideGoal.String(), 0),
			Weight: 1,
		},
		{
			Name:   "register_schema",
			Kind:   kindRegisterSchema,
			Route:  "/v1/schemas/chain",
			Body:   registerBody(chainSchema, chainSigma),
			Weight: 1,
		},
		{
			Name:   "batch_named",
			Kind:   kindBatch,
			Route:  "/v1/batch",
			Body:   batchBody("chain", chainGoals),
			Weight: 2,
		},
	}
}

// fdChainInstance renders the n-attribute FD chain R: A0 -> A1 -> ... ->
// A(n-1) in the serve API's text forms, plus a spread of chain-prefix
// goals for the batch scenario (all implied, all with distinct relevant
// footprints of increasing depth).
func fdChainInstance(n int) (schema, sigma, goals []string) {
	attrs := make([]string, n)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("A%d", i)
	}
	schema = []string{"R(" + strings.Join(attrs, ",") + ")"}
	for i := 0; i+1 < n; i++ {
		sigma = append(sigma, fmt.Sprintf("R: A%d -> A%d", i, i+1))
	}
	for i := 1; i < n; i++ {
		goals = append(goals, fmt.Sprintf("R: A0 -> A%d", i))
	}
	return schema, sigma, goals
}

// registerBody renders a PUT /v1/schemas/{name} body.
func registerBody(schema, sigma []string) string {
	b, err := json.Marshal(map[string]any{"schema": schema, "sigma": sigma})
	if err != nil {
		panic(err)
	}
	return string(b)
}

// batchBody renders a POST /v1/batch body against a registered name.
func batchBody(name string, goals []string) string {
	b, err := json.Marshal(map[string]any{"schema_name": name, "goals": goals})
	if err != nil {
		panic(err)
	}
	return string(b)
}

// renderInstance serializes a benchws instance into an implies body:
// the schema and dependency String() forms are exactly the serve API's
// input grammar.
func renderInstance(db *schema.Database, sigma []deps.Dependency, goal string, budget int) string {
	var schemes, sigmaStrs []string
	for _, name := range db.Names() {
		s, _ := db.Scheme(name)
		schemes = append(schemes, s.String())
	}
	for _, d := range sigma {
		sigmaStrs = append(sigmaStrs, d.String())
	}
	return impliesBody(schemes, sigmaStrs, goal, budget)
}

// impliesBody renders an ImpliesRequest JSON body.
func impliesBody(schema, sigma []string, goal string, budget int) string {
	req := map[string]any{"schema": schema, "sigma": sigma, "goal": goal}
	if budget > 0 {
		req["budget"] = budget
	}
	b, err := json.Marshal(req)
	if err != nil {
		panic(err)
	}
	return string(b)
}
