package main

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"indfd/internal/obs"
	"indfd/internal/serve"
)

func TestParseSLO(t *testing.T) {
	clauses, err := parseSLO("p99<25ms, errs<0.1%,mean<1s")
	if err != nil {
		t.Fatal(err)
	}
	if len(clauses) != 3 {
		t.Fatalf("clauses = %d, want 3", len(clauses))
	}
	if clauses[0].Metric != "p99" || clauses[0].BoundUS != 25_000 {
		t.Errorf("clause 0 = %+v", clauses[0])
	}
	if clauses[1].Metric != "errs" || clauses[1].BoundRate != 0.001 {
		t.Errorf("clause 1 = %+v", clauses[1])
	}
	if clauses[2].BoundUS != 1_000_000 {
		t.Errorf("clause 2 = %+v", clauses[2])
	}
	if c, err := parseSLO(""); err != nil || c != nil {
		t.Errorf("empty SLO = %v, %v", c, err)
	}
	for _, bad := range []string{"p99=25ms", "p42<1ms", "errs<0.1", "p99<fast"} {
		if _, err := parseSLO(bad); err == nil {
			t.Errorf("parseSLO(%q) accepted", bad)
		}
	}
	// Valid shared grammar, but loadgen-side meaningless: route
	// selectors belong to the watchdog, and the rejection must say so.
	if _, err := parseSLO("p99{route=/v1/implies}<5ms"); err == nil ||
		!strings.Contains(err.Error(), "alert-rules") {
		t.Errorf("labeled selector rejection = %v", err)
	}
}

func TestEvalSLO(t *testing.T) {
	r := &Report{
		Completed: 1000, Errors: 5, ErrorRate: 0.005,
		Overall: RouteStats{P99US: 30_000, MeanUS: 2_000},
	}
	clauses, _ := parseSLO("p99<25ms,errs<0.1%,mean<10ms")
	breaches := evalSLO(clauses, r)
	if len(breaches) != 2 {
		t.Fatalf("breaches = %v, want p99 and errs", breaches)
	}
	clauses, _ = parseSLO("p99<50ms,errs<1%,mean<10ms")
	if breaches := evalSLO(clauses, r); len(breaches) != 0 {
		t.Errorf("healthy run breached: %v", breaches)
	}
}

// TestQuantile builds a histogram with a known distribution and wants
// the shared obs estimator (which the report quantiles ride on) to
// land inside the right buckets.
func TestQuantile(t *testing.T) {
	reg := obs.New()
	h := reg.Histogram("q")
	// 99 observations at ~100us, one at ~10000us.
	for i := 0; i < 99; i++ {
		h.Observe(100)
	}
	h.Observe(10_000)
	snap := reg.Snapshot().Histograms["q"]
	p50 := snap.Quantile(0.50)
	if p50 < 64 || p50 > 127 {
		t.Errorf("p50 = %d, want inside the 100us bucket [64,127]", p50)
	}
	// p99 rank is 99, still inside the 100us mass.
	if p99 := snap.Quantile(0.99); p99 < 64 || p99 > 127 {
		t.Errorf("p99 = %d, want inside the 100us bucket", p99)
	}
	// p100 hits the outlier but is capped at the true max.
	if p100 := snap.Quantile(1.0); p100 != 10_000 {
		t.Errorf("p100 = %d, want capped at max 10000", p100)
	}
	if q := (obs.HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Errorf("quantile of empty histogram = %d", q)
	}
}

func TestLoadScenariosFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.workload")
	content := `# comment
{"name":"ping","route":"/healthz","weight":2}

{"name":"imp","route":"/v1/implies","body":"{}"}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	scs, err := loadScenarios(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 2 || scs[0].Name != "ping" || scs[0].Weight != 2 || scs[1].Weight != 1 {
		t.Errorf("scenarios = %+v", scs)
	}
	if _, err := loadScenarios(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing workload file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.workload")
	os.WriteFile(bad, []byte(`{"route":"/x"}`), 0o644) //nolint:errcheck
	if _, err := loadScenarios(bad); err == nil {
		t.Error("nameless scenario accepted")
	}
}

// TestDefaultScenariosValid renders the built-in mix and wants every
// body to be valid JSON aimed at a real route.
func TestDefaultScenariosValid(t *testing.T) {
	for _, sc := range defaultScenarios() {
		if !strings.HasPrefix(sc.Route, "/v1/") {
			t.Errorf("%s: route %q", sc.Name, sc.Route)
		}
		var req map[string]any
		if err := json.Unmarshal([]byte(sc.Body), &req); err != nil {
			t.Errorf("%s: body not JSON: %v", sc.Name, err)
		}
		if req["goal"] == "" {
			t.Errorf("%s: no goal", sc.Name)
		}
		if sc.Weight <= 0 {
			t.Errorf("%s: weight %d", sc.Name, sc.Weight)
		}
	}
}

// newDepserve builds a real serve.Server for the generator to hit,
// optionally wrapped in an artificial per-request delay.
func newDepserve(t *testing.T, delay time.Duration) *httptest.Server {
	t.Helper()
	s := serve.New(serve.Config{
		Reg:    obs.New(),
		Logger: slog.New(slog.NewJSONHandler(io.Discard, nil)),
	})
	s.SetReady(true)
	h := s.Handler()
	if delay > 0 {
		inner := h
		h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(delay)
			inner.ServeHTTP(w, r)
		})
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts
}

// TestRunAgainstDepserve is the end-to-end healthy path: a short run
// against a live server must complete every launched request, report
// per-scenario stats, and hold a generous SLO.
func TestRunAgainstDepserve(t *testing.T) {
	ts := newDepserve(t, 0)
	report, err := run(config{
		Target:       ts.URL,
		QPS:          200,
		Duration:     500 * time.Millisecond,
		Timeout:      5 * time.Second,
		ReadyTimeout: 5 * time.Second,
		SLO:          "p99<10s,errs<50%",
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Sent == 0 || report.Completed != report.Sent {
		t.Errorf("sent %d, completed %d — open loop must account for every launch",
			report.Sent, report.Completed)
	}
	if report.Errors != 0 {
		t.Errorf("errors = %d against a healthy server", report.Errors)
	}
	if len(report.Routes) == 0 {
		t.Fatalf("no per-scenario stats")
	}
	for name, st := range report.Routes {
		if st.Count == 0 || st.P99US == 0 || st.MaxUS == 0 {
			t.Errorf("%s stats empty: %+v", name, st)
		}
		if st.P50US > st.P99US || st.P99US > st.MaxUS {
			t.Errorf("%s quantiles not monotone: %+v", name, st)
		}
	}
	if len(report.Breaches) != 0 {
		t.Errorf("generous SLO breached: %v", report.Breaches)
	}
}

// TestRunDetectsSlowServer is the acceptance path for the gate: an
// artificially slowed handler must breach a tight latency SLO — the
// breach lands in the report, and main would exit nonzero.
func TestRunDetectsSlowServer(t *testing.T) {
	ts := newDepserve(t, 30*time.Millisecond)
	report, err := run(config{
		Target:       ts.URL,
		QPS:          50,
		Duration:     300 * time.Millisecond,
		Timeout:      5 * time.Second,
		ReadyTimeout: 5 * time.Second,
		SLO:          "p50<5ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Breaches) == 0 {
		t.Fatalf("30ms-delayed server held p50<5ms: %+v", report.Overall)
	}
	if !strings.Contains(report.Breaches[0], "p50") {
		t.Errorf("breach message %q does not name the clause", report.Breaches[0])
	}
}

// TestRunCountsErrors points the generator at a server that always
// fails and wants the errs clause to trip.
func TestRunCountsErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	t.Cleanup(ts.Close)
	report, err := run(config{
		Target:       ts.URL,
		QPS:          100,
		Duration:     200 * time.Millisecond,
		Timeout:      time.Second,
		ReadyTimeout: time.Second,
		SLO:          "errs<1%",
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors == 0 || report.ErrorRate < 0.99 {
		t.Errorf("errors = %d rate %.2f against an always-500 server", report.Errors, report.ErrorRate)
	}
	if len(report.Breaches) == 0 {
		t.Error("errs<1% held against an always-500 server")
	}
}

// TestCompareBaseline pins the regression arithmetic: a fresh p99 past
// tolerance × baseline breaches; new and vanished routes are skipped.
func TestCompareBaseline(t *testing.T) {
	dir := t.TempDir()
	base := &Report{Routes: map[string]*RouteStats{
		"a":    {Count: 10, P99US: 100},
		"b":    {Count: 10, P99US: 100},
		"gone": {Count: 10, P99US: 100},
	}}
	raw, _ := json.Marshal(base)
	path := filepath.Join(dir, "BENCH_slo.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := &Report{Routes: map[string]*RouteStats{
		"a":   {Count: 10, P99US: 150}, // 1.5x: fine at 2.0
		"b":   {Count: 10, P99US: 500}, // 5x: breach
		"new": {Count: 10, P99US: 9999},
	}}
	breaches, err := compareBaseline(path, 2.0, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if len(breaches) != 1 || !strings.Contains(breaches[0], "b p99") {
		t.Errorf("breaches = %v, want exactly route b", breaches)
	}
	if _, err := compareBaseline(filepath.Join(dir, "missing"), 2.0, fresh); err == nil {
		t.Error("missing baseline accepted")
	}
}

// TestWaitReadyTimeout wants a crisp error when nothing is listening.
func TestWaitReadyTimeout(t *testing.T) {
	client := &http.Client{Timeout: 100 * time.Millisecond}
	err := waitReady(client, "http://127.0.0.1:1", 200*time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "not ready") {
		t.Errorf("waitReady against a dead port = %v", err)
	}
}
