package main

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
	"unicode/utf8"
)

func TestSparkline(t *testing.T) {
	got := sparkline([]float64{0, 1, 2, 3}, 4)
	if utf8.RuneCountInString(got) != 4 {
		t.Fatalf("width = %d runes (%q)", utf8.RuneCountInString(got), got)
	}
	runes := []rune(got)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("scaling wrong: %q", got)
	}
	// Monotone input → monotone bars.
	for i := 1; i < len(runes); i++ {
		if strings.IndexRune(sparkRunes, runes[i]) < strings.IndexRune(sparkRunes, runes[i-1]) {
			t.Errorf("bars not monotone: %q", got)
		}
	}
	// NaN gaps render as spaces.
	if got := sparkline([]float64{1, math.NaN(), 2}, 3); []rune(got)[1] != ' ' {
		t.Errorf("gap not a space: %q", got)
	}
	// Short series left-pad so the newest sample is rightmost.
	if got := sparkline([]float64{5}, 4); !strings.HasPrefix(got, "   ") {
		t.Errorf("no left pad: %q", got)
	}
	// Long series keep the tail.
	got = sparkline([]float64{9, 9, 9, 0, 0}, 2)
	if got != "▁▁" {
		t.Errorf("tail not kept: %q", got)
	}
	// All-zero values draw the floor, not a crash.
	if got := sparkline([]float64{0, 0}, 2); got != "▁▁" {
		t.Errorf("zeros = %q", got)
	}
	if sparkline(nil, 0) == "" {
		t.Error("zero width must still render one cell")
	}
}

func TestRatio(t *testing.T) {
	m := map[string][]tsPoint{
		"hits":   {{T: 1000, V: 3}, {T: 2000, V: 0}, {T: 3000, V: 9}},
		"misses": {{T: 1000, V: 1}, {T: 2000, V: 0}, {T: 3000, V: 1}},
	}
	r := ratio(m, "hits", "misses")
	if len(r) != 3 {
		t.Fatalf("ratio = %v", r)
	}
	if r[0] != 0.75 || r[2] != 0.9 {
		t.Errorf("ratio = %v", r)
	}
	if !math.IsNaN(r[1]) {
		t.Errorf("zero-traffic tick = %v, want NaN gap", r[1])
	}
}

func sampleTimeseries() timeseriesReply {
	pts := func(vs ...float64) []tsPoint {
		out := make([]tsPoint, len(vs))
		for i, v := range vs {
			out[i] = tsPoint{T: int64(i+1) * 2000, V: v}
		}
		return out
	}
	return timeseriesReply{
		Enabled:      true,
		ResolutionMS: 2000,
		RetentionMS:  900000,
		SeriesCount:  6,
		Series: []tsSeries{
			{Name: "serve.requests_total", Kind: "delta", Points: pts(100, 200, 150)},
			{Name: "serve.http_latency:p50", Kind: "quantile", Points: pts(800, 900, 1000)},
			{Name: "serve.http_latency:p99", Kind: "quantile", Points: pts(4000, 5000, 9000)},
			{Name: "cache.hits", Kind: "delta", Points: pts(90, 90, 90)},
			{Name: "cache.misses", Kind: "delta", Points: pts(10, 10, 10)},
			{Name: "chase.rounds", Kind: "delta", Points: pts(40, 50, 60)},
		},
	}
}

func TestBuildFrame(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	frame := buildFrame(sampleTimeseries(), alertsReply{
		Enabled: true,
		Active: []alertEntry{
			{Name: "lat_burn", Severity: "critical", State: "firing", Message: "lat_burn: SLO p99<5ms burning at 3.1x"},
			{Name: "warnish", Severity: "warning", State: "pending", Message: "warnish: pending"},
		},
		Events: []alertEvent{{Time: now.Add(-time.Minute), Name: "lat_burn", Severity: "critical", State: "fired"}},
	}, digestsReply{
		Digests: []digestEntry{
			{Fingerprint: "abc123", Query: "R: A -> D | sigma=3", Count: 500, Errors: 5, CacheHits: 250, TotalNS: 2e9, MeanNS: 4e6},
			{Fingerprint: "tiny", Count: 10, TotalNS: 9e9, MeanNS: 9e8},
		},
	}, now, frameOptions{Width: 20, Window: 5 * time.Minute, Color: false})

	for _, want := range []string{
		"qps", "p50 ms", "p99 ms", "cache hit", "pool hit", "chase rnds",
		"lat_burn", "firing", "critical", "warnish", "pending",
		"hottest digests", "R: A -> D | sigma=3",
		"6 series", "2s resolution",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}
	// qps latest = 150 deltas / 2s = 75.0
	if !strings.Contains(frame, "75.0") {
		t.Errorf("qps value not rendered:\n%s", frame)
	}
	// p99 latest = 9000us = 9.00ms
	if !strings.Contains(frame, "9.00") {
		t.Errorf("p99 not rendered in ms:\n%s", frame)
	}
	// cache hit = 90/(90+10) = 90%
	if !strings.Contains(frame, "90%") {
		t.Errorf("cache hit %% not rendered:\n%s", frame)
	}
	// The digests table sorts by total time: "tiny" (9s) before the
	// named query (2s).
	if strings.Index(frame, "tiny") > strings.Index(frame, "R: A -> D") {
		t.Errorf("digests not sorted by total time:\n%s", frame)
	}
	// No-color mode must emit no escape sequences besides none at all.
	if strings.Contains(frame, "\x1b[") {
		t.Errorf("ANSI codes under -no-color:\n%q", frame)
	}

	colored := buildFrame(sampleTimeseries(), alertsReply{Enabled: true, Active: []alertEntry{
		{Name: "x", Severity: "critical", State: "firing"},
	}}, digestsReply{}, now, frameOptions{Width: 20, Window: time.Minute, Color: true})
	if !strings.Contains(colored, ansiRed) {
		t.Error("critical alert not red in color mode")
	}
}

func TestBuildFrameDisabled(t *testing.T) {
	frame := buildFrame(timeseriesReply{Enabled: false}, alertsReply{}, digestsReply{},
		time.Now(), frameOptions{Width: 10, Window: time.Minute})
	if !strings.Contains(frame, "-ts-resolution 0") {
		t.Errorf("disabled frame = %q", frame)
	}
}

func TestBuildFrameQuietAlerts(t *testing.T) {
	opts := frameOptions{Width: 10, Window: time.Minute}
	frame := buildFrame(sampleTimeseries(), alertsReply{Enabled: true}, digestsReply{}, time.Now(), opts)
	if !strings.Contains(frame, "none active") {
		t.Errorf("quiet alerts frame:\n%s", frame)
	}
	frame = buildFrame(sampleTimeseries(), alertsReply{Enabled: false}, digestsReply{}, time.Now(), opts)
	if !strings.Contains(frame, "watchdog off") {
		t.Errorf("watchdog-off frame:\n%s", frame)
	}
}

// TestFetchFrame drives the full fetch path against a fake depserve.
func TestFetchFrame(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/timeseries", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("since") == "" {
			t.Error("no since parameter on the timeseries fetch")
		}
		json.NewEncoder(w).Encode(sampleTimeseries()) //nolint:errcheck
	})
	mux.HandleFunc("/debug/alerts", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(alertsReply{Enabled: true}) //nolint:errcheck
	})
	mux.HandleFunc("/debug/digests", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(digestsReply{}) //nolint:errcheck
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	frame, err := fetchFrame(&http.Client{}, ts.URL, frameOptions{Width: 30, Window: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(frame, "qps") || !strings.Contains(frame, "none active") {
		t.Errorf("frame:\n%s", frame)
	}

	// A dead target is an error, not a hang or a panic.
	if _, err := fetchFrame(&http.Client{Timeout: 200 * time.Millisecond}, "http://127.0.0.1:1", frameOptions{}); err == nil {
		t.Error("dead target fetched")
	}
}
