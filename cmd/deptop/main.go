// Command deptop is a terminal "top" for a running depserve: it polls
// GET /debug/timeseries, /debug/alerts and /debug/digests and renders
// the live state of the service as sparkline panels — qps, p50/p99
// latency, cache and pool hit rates, chase rounds — plus the hottest
// query digests and any active watchdog alerts, redrawn in place every
// -interval.
//
// Usage:
//
//	deptop [-target http://127.0.0.1:8377] [-interval 2s] [-window 5m]
//	       [-frames 0] [-once] [-width 60] [-no-color]
//
// deptop needs the server's time-series history on (depserve's
// default; it is off only under -ts-resolution 0). -once prints a
// single frame without clearing the screen — scripts and CI snapshots
// use it; -frames N stops after N redraws (0 = run until interrupted).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"
)

func main() {
	target := flag.String("target", "http://127.0.0.1:8377", "depserve base URL")
	interval := flag.Duration("interval", 2*time.Second, "redraw interval")
	window := flag.Duration("window", 5*time.Minute, "history window the panels show")
	frames := flag.Int("frames", 0, "stop after this many frames (0 = run until interrupted)")
	once := flag.Bool("once", false, "print one frame without clearing the screen and exit")
	width := flag.Int("width", 60, "sparkline width in cells")
	noColor := flag.Bool("no-color", false, "disable ANSI colors")
	flag.Parse()

	opt := frameOptions{Width: *width, Window: *window, Color: !*noColor}
	if *once {
		*frames = 1
	}
	if err := run(os.Stdout, *target, *interval, *frames, *once, opt); err != nil {
		fmt.Fprintln(os.Stderr, "deptop:", err)
		os.Exit(1)
	}
}

func run(out *os.File, target string, interval time.Duration, frames int, once bool, opt frameOptions) error {
	client := &http.Client{Timeout: 5 * time.Second}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	drawn := 0
	for {
		frame, err := fetchFrame(client, target, opt)
		if err != nil {
			return err
		}
		if !once {
			// Home the cursor and clear below instead of a full wipe, so
			// the redraw never flickers.
			fmt.Fprint(out, "\x1b[H\x1b[2J")
		}
		fmt.Fprint(out, frame)
		drawn++
		if frames > 0 && drawn >= frames {
			return nil
		}
		select {
		case <-time.After(interval):
		case <-sig:
			return nil
		}
	}
}

// --- wire types (the /debug JSON shapes deptop consumes) --------------------

type tsPoint struct {
	T int64   `json:"t"` // unix milliseconds
	V float64 `json:"v"`
}

type tsSeries struct {
	Name   string    `json:"name"`
	Kind   string    `json:"kind"`
	Points []tsPoint `json:"points"`
}

type timeseriesReply struct {
	Enabled      bool       `json:"enabled"`
	ResolutionMS int64      `json:"resolution_ms"`
	RetentionMS  int64      `json:"retention_ms"`
	SeriesCount  int        `json:"series_count"`
	Series       []tsSeries `json:"series"`
}

type alertEntry struct {
	Name     string  `json:"name"`
	Severity string  `json:"severity"`
	Clause   string  `json:"clause"`
	State    string  `json:"state"`
	Value    float64 `json:"value"`
	Message  string  `json:"message"`
}

type alertEvent struct {
	Time     time.Time `json:"time"`
	Name     string    `json:"name"`
	Severity string    `json:"severity"`
	State    string    `json:"state"`
	Message  string    `json:"message"`
}

type alertsReply struct {
	Enabled bool         `json:"enabled"`
	Active  []alertEntry `json:"active"`
	Events  []alertEvent `json:"events"`
}

type digestEntry struct {
	Fingerprint string `json:"fingerprint"`
	Query       string `json:"query"`
	Count       int64  `json:"count"`
	Errors      int64  `json:"errors"`
	CacheHits   int64  `json:"cache_hits"`
	TotalNS     int64  `json:"total_ns"`
	MeanNS      int64  `json:"mean_ns"`
}

type digestsReply struct {
	Digests []digestEntry `json:"digests"`
}

// --- fetching ---------------------------------------------------------------

func fetchFrame(client *http.Client, target string, opt frameOptions) (string, error) {
	var ts timeseriesReply
	if err := fetchJSON(client, target+"/debug/timeseries?since="+opt.Window.String(), &ts); err != nil {
		return "", err
	}
	var alerts alertsReply
	if err := fetchJSON(client, target+"/debug/alerts?limit=5", &alerts); err != nil {
		return "", err
	}
	var digests digestsReply
	if err := fetchJSON(client, target+"/debug/digests?limit=8", &digests); err != nil {
		return "", err
	}
	return buildFrame(ts, alerts, digests, time.Now(), opt), nil
}

func fetchJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// --- frame building (pure; the tests drive this directly) -------------------

type frameOptions struct {
	Width  int
	Window time.Duration
	Color  bool
}

const sparkRunes = "▁▂▃▄▅▆▇█"

// sparkline renders values into a fixed-width bar string. Values are
// scaled against the series max; NaN (a tsdb gap) renders as a space.
// When there are more values than cells the tail (newest) wins.
func sparkline(values []float64, width int) string {
	if width <= 0 {
		width = 1
	}
	if len(values) > width {
		values = values[len(values)-width:]
	}
	max := 0.0
	for _, v := range values {
		if !math.IsNaN(v) && v > max {
			max = v
		}
	}
	runes := []rune(sparkRunes)
	var b strings.Builder
	for i := len(values); i < width; i++ {
		b.WriteByte(' ') // left-pad so the newest sample is always rightmost
	}
	for _, v := range values {
		switch {
		case math.IsNaN(v):
			b.WriteByte(' ')
		case max <= 0:
			b.WriteRune(runes[0])
		default:
			idx := int(v / max * float64(len(runes)-1))
			if idx >= len(runes) {
				idx = len(runes) - 1
			}
			b.WriteRune(runes[idx])
		}
	}
	return b.String()
}

// seriesByName indexes a timeseries reply.
func seriesByName(ts timeseriesReply) map[string][]tsPoint {
	m := make(map[string][]tsPoint, len(ts.Series))
	for _, s := range ts.Series {
		m[s.Name] = s.Points
	}
	return m
}

// values extracts the point values of one series (empty when absent).
func values(m map[string][]tsPoint, name string) []float64 {
	pts := m[name]
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = p.V
	}
	return out
}

// ratio builds the pointwise a/(a+b) series over two delta series,
// aligned by timestamp; ticks where a+b is 0 are gaps (NaN).
func ratio(m map[string][]tsPoint, aName, bName string) []float64 {
	a, b := m[aName], m[bName]
	bAt := make(map[int64]float64, len(b))
	for _, p := range b {
		bAt[p.T] = p.V
	}
	out := make([]float64, len(a))
	for i, p := range a {
		total := p.V + bAt[p.T]
		if total <= 0 || math.IsNaN(total) {
			out[i] = math.NaN()
			continue
		}
		out[i] = p.V / total
	}
	return out
}

// scale multiplies every value (gaps stay gaps).
func scale(v []float64, f float64) []float64 {
	out := make([]float64, len(v))
	for i := range v {
		out[i] = v[i] * f
	}
	return out
}

// last returns the newest non-gap value, or NaN.
func last(v []float64) float64 {
	for i := len(v) - 1; i >= 0; i-- {
		if !math.IsNaN(v[i]) {
			return v[i]
		}
	}
	return math.NaN()
}

func fmtVal(v float64, format string) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf(format, v)
}

const (
	ansiRed    = "\x1b[31m"
	ansiYellow = "\x1b[33m"
	ansiGreen  = "\x1b[32m"
	ansiBold   = "\x1b[1m"
	ansiReset  = "\x1b[0m"
)

func colorize(on bool, color, s string) string {
	if !on {
		return s
	}
	return color + s + ansiReset
}

// buildFrame renders one full screen of panels from the three debug
// replies. Pure: every input is a value, now is a parameter, the
// output is the exact string printed.
func buildFrame(ts timeseriesReply, alerts alertsReply, digests digestsReply, now time.Time, opt frameOptions) string {
	var b strings.Builder
	title := fmt.Sprintf("deptop · %s · window %s", now.Format("15:04:05"), opt.Window)
	b.WriteString(colorize(opt.Color, ansiBold, title))
	b.WriteByte('\n')

	if !ts.Enabled {
		b.WriteString("time-series history is off on this server (-ts-resolution 0); nothing to draw\n")
		return b.String()
	}
	resSec := float64(ts.ResolutionMS) / 1000
	if resSec <= 0 {
		resSec = 1
	}
	m := seriesByName(ts)

	qps := scale(values(m, "serve.requests_total"), 1/resSec)
	p50 := scale(values(m, "serve.http_latency:p50"), 1e-3) // µs → ms
	p99 := scale(values(m, "serve.http_latency:p99"), 1e-3)
	cacheHit := scale(ratio(m, "cache.hits", "cache.misses"), 100)
	poolHit := scale(ratio(m, "pool.hits", "pool.misses"), 100)
	rounds := values(m, "chase.rounds")

	panel := func(label string, v []float64, format, unit string) {
		fmt.Fprintf(&b, "%-12s %s %8s%s\n", label, sparkline(v, opt.Width), fmtVal(last(v), format), unit)
	}
	panel("qps", qps, "%.1f", "")
	panel("p50 ms", p50, "%.2f", "")
	panel("p99 ms", p99, "%.2f", "")
	panel("cache hit", cacheHit, "%.0f", "%")
	panel("pool hit", poolHit, "%.0f", "%")
	panel("chase rnds", rounds, "%.0f", "")

	// Alerts panel: active ones first (critical red, warning yellow),
	// then the most recent transitions.
	b.WriteByte('\n')
	if !alerts.Enabled {
		b.WriteString(colorize(opt.Color, ansiGreen, "alerts: watchdog off (no -alert-rules)"))
		b.WriteByte('\n')
	} else if len(alerts.Active) == 0 {
		b.WriteString(colorize(opt.Color, ansiGreen, "alerts: none active"))
		b.WriteByte('\n')
	} else {
		for _, a := range alerts.Active {
			color := ansiYellow
			if a.Severity == "critical" {
				color = ansiRed
			}
			line := fmt.Sprintf("%s %-8s %-9s %s", a.State, a.Severity, a.Name, a.Message)
			b.WriteString(colorize(opt.Color, color, line))
			b.WriteByte('\n')
		}
	}
	for _, ev := range alerts.Events {
		fmt.Fprintf(&b, "  %s %-8s %s (%s)\n", ev.Time.Format("15:04:05"), ev.State, ev.Name, ev.Severity)
	}

	// Hottest digests by total engine time.
	if len(digests.Digests) > 0 {
		b.WriteByte('\n')
		b.WriteString(colorize(opt.Color, ansiBold,
			fmt.Sprintf("%-24s %8s %8s %9s %6s %6s", "hottest digests", "calls", "mean ms", "total s", "err%", "hit%")))
		b.WriteByte('\n')
		sort.SliceStable(digests.Digests, func(i, j int) bool {
			return digests.Digests[i].TotalNS > digests.Digests[j].TotalNS
		})
		for _, d := range digests.Digests {
			name := d.Query
			if name == "" {
				name = d.Fingerprint
			}
			if len(name) > 24 {
				name = name[:21] + "..."
			}
			errPct, hitPct := 0.0, 0.0
			if d.Count > 0 {
				errPct = 100 * float64(d.Errors) / float64(d.Count)
				hitPct = 100 * float64(d.CacheHits) / float64(d.Count)
			}
			fmt.Fprintf(&b, "%-24s %8d %8.2f %9.2f %5.1f%% %5.1f%%\n",
				name, d.Count, float64(d.MeanNS)/1e6, float64(d.TotalNS)/1e9, errPct, hitPct)
		}
	}
	fmt.Fprintf(&b, "\n%d series · %s resolution · %s retained\n",
		ts.SeriesCount,
		(time.Duration(ts.ResolutionMS) * time.Millisecond).String(),
		(time.Duration(ts.RetentionMS) * time.Millisecond).String())
	return b.String()
}
