// Command benchdiff guards the committed per-engine baseline: it runs
// the internal/benchws reference workloads fresh and compares their
// benchws.*_ns wall-time gauges against BENCH_engines.json, failing
// when any workload regressed by more than the threshold.
//
//	benchdiff [-baseline BENCH_engines.json] [-rounds 5] [-threshold 0.20]
//
// Wall times are best-of-rounds on both sides, so scheduler noise
// shrinks them, never grows them; a regression past the threshold is a
// code change, not jitter (CI still runs this step as advisory, since
// shared runners are slower and noisier than the machine that produced
// the baseline). Counter drift — the deterministic work counts changing
// — is reported as a warning: it means an engine's algorithm changed
// and the baseline should be regenerated with `make bench-json`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"indfd/internal/benchws"
	"indfd/internal/obs"
)

func main() {
	baseline := flag.String("baseline", "BENCH_engines.json", "committed baseline snapshot to compare against")
	rounds := flag.Int("rounds", 5, "timing rounds per workload (best-of)")
	threshold := flag.Float64("threshold", 0.20, "relative ns regression that fails the diff")
	flag.Parse()

	if err := run(*baseline, *rounds, *threshold); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(baselinePath string, rounds int, threshold float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base obs.Snapshot
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse %s: %w", baselinePath, err)
	}

	reg := obs.New()
	if err := benchws.Run(reg, rounds); err != nil {
		return err
	}
	fresh := reg.Snapshot()

	var regressions, drifts []string
	fmt.Printf("%-20s %14s %14s %9s\n", "workload", "baseline ns", "fresh ns", "ratio")
	for _, w := range benchws.Workloads() {
		gauge := "benchws." + w.Name + "_ns"
		baseNS, ok := base.Gauges[gauge]
		freshNS := fresh.Gauges[gauge]
		if !ok || baseNS <= 0 {
			fmt.Printf("%-20s %14s %14d %9s\n", w.Name, "(absent)", freshNS, "-")
			continue
		}
		ratio := float64(freshNS) / float64(baseNS)
		marker := ""
		if ratio > 1+threshold {
			marker = "  REGRESSED"
			regressions = append(regressions,
				fmt.Sprintf("%s: %d ns -> %d ns (%.2fx > %.2fx)", w.Name, baseNS, freshNS, ratio, 1+threshold))
		}
		fmt.Printf("%-20s %14d %14d %8.2fx%s\n", w.Name, baseNS, freshNS, ratio, marker)
	}

	// The work counters are deterministic: any drift is an algorithm
	// change, not noise, and the committed baseline is stale.
	keys := make([]string, 0, len(base.Counters))
	for k := range base.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if got := fresh.Counters[k]; got != base.Counters[k] {
			drifts = append(drifts, fmt.Sprintf("%s: %d -> %d", k, base.Counters[k], got))
		}
	}
	for k, got := range fresh.Counters {
		if _, ok := base.Counters[k]; !ok {
			drifts = append(drifts, fmt.Sprintf("%s: (absent) -> %d", k, got))
		}
	}
	if len(drifts) > 0 {
		sort.Strings(drifts)
		fmt.Fprintf(os.Stderr, "benchdiff: warning: %d counter(s) drifted from the baseline — regenerate it with `make bench-json`:\n  %s\n",
			len(drifts), strings.Join(drifts, "\n  "))
	}

	if len(regressions) > 0 {
		return fmt.Errorf("%d workload(s) regressed past the %.0f%% threshold:\n  %s",
			len(regressions), threshold*100, strings.Join(regressions, "\n  "))
	}
	fmt.Printf("ok: no workload regressed past %.0f%%\n", threshold*100)
	return nil
}
