// Command paperfigs regenerates every figure and quantitative claim of
// the paper and verifies it mechanically. Each experiment is labelled
// with its id from DESIGN.md / EXPERIMENTS.md.
//
// Usage:
//
//	paperfigs [-only E2] [-k 3] [-n 2] [-csv dir]
package main

import (
	"flag"
	"fmt"
	"math/big"
	"os"
	"path/filepath"
	"strings"
	"time"

	"indfd/internal/chase"
	"indfd/internal/counterex"
	"indfd/internal/data"
	"indfd/internal/deps"
	"indfd/internal/emvd"
	"indfd/internal/enum"
	"indfd/internal/fd"
	"indfd/internal/fo"
	"indfd/internal/ind"
	"indfd/internal/lba"
	"indfd/internal/perm"
	"indfd/internal/rules"
	"indfd/internal/schema"
	"indfd/internal/unary"
)

var failed bool

func main() {
	only := flag.String("only", "", "run a single experiment (E1..E16)")
	k := flag.Int("k", 3, "parameter k for the Section 6 construction")
	n := flag.Int("n", 2, "parameter n for the Section 7 construction")
	csvDir := flag.String("csv", "", "also export every figure database as CSVs under this directory")
	flag.Parse()
	if *csvDir != "" {
		if err := exportFigures(*csvDir, *k, *n); err != nil {
			fmt.Fprintln(os.Stderr, "paperfigs:", err)
			os.Exit(1)
		}
		fmt.Printf("figure databases exported to %s\n\n", *csvDir)
	}

	experiments := []struct {
		id  string
		run func()
	}{
		{"E1", e1}, {"E2", e2}, {"E3", e3}, {"E4", func() { e45("E4", counterex.Fig41(), "Fig 4.1") }},
		{"E5", func() { e45("E5", counterex.Fig42(), "Fig 4.2") }}, {"E6", e6}, {"E7", e7}, {"E8", e8},
		{"E9", func() { e9(*k) }}, {"E10", func() { e10(*n) }}, {"E11", func() { e11(*n) }},
		{"E12", func() { e12(*n) }}, {"E13", e13}, {"E14", e14}, {"E15", e15}, {"E16", e16},
	}
	ran := false
	for _, e := range experiments {
		if *only != "" && e.id != *only {
			continue
		}
		ran = true
		e.run()
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "paperfigs: unknown experiment %q (want E1..E16)\n", *only)
		os.Exit(1)
	}
	if failed {
		os.Exit(1)
	}
}

func header(id, title string) {
	fmt.Printf("=== %s: %s ===\n", id, title)
}

func check(ok bool, what string) {
	mark := "✓"
	if !ok {
		mark = "✗"
		failed = true
	}
	fmt.Printf("  %s %s\n", mark, what)
}

// E1: Theorem 3.1 — IND axiomatization completeness and ⊨ = ⊨fin, via
// agreement of the syntactic procedure with the chase-with-zeros.
func e1() {
	header("E1", "Theorem 3.1 — completeness of IND1–IND3, finite = unrestricted")
	db := schema.MustDatabase(
		schema.MustScheme("R", "A", "B", "C"),
		schema.MustScheme("S", "D", "E", "F"),
	)
	sigma := []deps.IND{
		deps.NewIND("R", deps.Attrs("A", "B"), "S", deps.Attrs("D", "E")),
		deps.NewIND("S", deps.Attrs("E", "D", "F"), "S", deps.Attrs("D", "E", "F")),
	}
	goal := deps.NewIND("R", deps.Attrs("B"), "S", deps.Attrs("D"))
	res, err := ind.Decide(db, sigma, goal)
	must(err)
	chased, cdb, err := ind.DecideByChase(db, sigma, goal)
	must(err)
	check(res.Implied && chased, fmt.Sprintf("Σ ⊢ %v and the chase database agrees", goal))
	p, _, err := ind.Prove(db, sigma, goal)
	must(err)
	check(p.Verify(sigma, goal) == nil, "formal IND1–IND3 proof verifies")
	fmt.Println("  chase-with-zeros database (Rule (*)):")
	fmt.Println(indent(cdb.String()))
}

// E2: Section 3 — the permutation family needs f(m)-1 steps; Landau
// growth.
func e2() {
	header("E2", "Section 3 — superpolynomial decision chains via Landau permutations")
	fmt.Println("    m   f(m)=g(m)    chain   states expanded   ln g(m)/√(m ln m)")
	for _, m := range []int{4, 6, 8, 10, 12} {
		s := perm.Scheme(m)
		db := schema.MustDatabase(s)
		gamma := perm.LandauPermutation(m)
		fm := perm.Landau(m)
		delta := gamma.Pow(new(big.Int).Sub(fm, big.NewInt(1)))
		res, err := ind.Decide(db, []deps.IND{perm.IND(s, gamma)}, perm.IND(s, delta))
		must(err)
		fmt.Printf("  %3d   %9v   %6d   %8d   %17.3f\n", m, fm, res.Stats.ChainLength, res.Stats.Expanded, perm.LandauLogRatio(m))
		if !res.Implied || res.Stats.ChainLength != int(fm.Int64()) {
			check(false, "chain length must equal f(m)")
		}
	}
	check(true, "minimal chains have length f(m) (superpolynomial in m)")
}

// E3: Theorem 3.3 — LBA reduction round trip.
func e3() {
	header("E3", "Theorem 3.3 — LBA acceptance ≡ IND implication")
	for _, n := range []int{2, 3, 4} {
		m := lba.Eraser()
		input := lba.Input("a", n)
		accepts, err := m.Accepts(input, 0)
		must(err)
		inst, err := lba.Reduce(m, input)
		must(err)
		start := time.Now()
		res, err := ind.Decide(inst.DB, inst.Sigma, inst.Goal)
		must(err)
		check(res.Implied == accepts,
			fmt.Sprintf("n=%d: accepts=%v, Σ⊨σ=%v, |Σ|=%d, decided in %v", n, accepts, res.Implied, len(inst.Sigma), time.Since(start).Round(time.Microsecond)))
	}
}

// E4/E5: Theorem 4.4 — the finite/unrestricted gap.
func e45(id string, inst counterex.Theorem44Instance, figName string) {
	header(id, "Theorem 4.4 — "+figName+" and the finite/unrestricted gap")
	sys, err := unary.New(inst.DB, inst.Sigma)
	must(err)
	fin, err := sys.ImpliesFinite(inst.Goal)
	must(err)
	unr, err := sys.ImpliesUnrestricted(inst.Goal)
	must(err)
	check(fin && !unr, fmt.Sprintf("Σ ⊨fin %v but Σ ⊭ it", inst.Goal))
	ex, err := sys.Explain(inst.Goal)
	must(err)
	fmt.Println("  the counting argument, mechanically:")
	fmt.Println(indent(ex.String()))
	check(inst.CheckWitness(50) == nil, "infinite witness obeys Σ and violates the goal (50-tuple window)")
	examined, err := inst.NoFiniteCounterexample(3, 4)
	check(err == nil, fmt.Sprintf("no finite counterexample among %d small databases", examined))
	fmt.Printf("  first tuples of %s: ", figName)
	w, _ := inst.Witness.Window(4).Relation("R")
	var rows []string
	for _, t := range w.Tuples() {
		rows = append(rows, t.String())
	}
	fmt.Println(strings.Join(rows, " "), "...")
}

// E6: Propositions 4.1–4.3 via the chase.
func e6() {
	header("E6", "Propositions 4.1–4.3 — FD/IND interaction via the chase")
	db := schema.MustDatabase(
		schema.MustScheme("R", "X", "Y", "Z"),
		schema.MustScheme("S", "T", "U", "V"),
	)
	base := []deps.Dependency{
		deps.NewIND("R", deps.Attrs("X", "Y"), "S", deps.Attrs("T", "U")),
		deps.NewIND("R", deps.Attrs("X", "Z"), "S", deps.Attrs("T", "V")),
		deps.NewFD("S", deps.Attrs("T"), deps.Attrs("U")),
	}
	r41, err := chase.ImpliesFD(db, base, deps.NewFD("R", deps.Attrs("X"), deps.Attrs("Y")), chase.Options{})
	must(err)
	check(r41.Verdict == chase.Implied, "Prop 4.1: Σ ⊨ R: X -> Y")
	r42, err := chase.ImpliesIND(db, base, deps.NewIND("R", deps.Attrs("X", "Y", "Z"), "S", deps.Attrs("T", "U", "V")), chase.Options{})
	must(err)
	check(r42.Verdict == chase.Implied, "Prop 4.2: Σ ⊨ R[XYZ] ⊆ S[TUV]")
	deg := []deps.Dependency{
		deps.NewIND("R", deps.Attrs("X", "Y"), "S", deps.Attrs("T", "U")),
		deps.NewIND("R", deps.Attrs("X", "Z"), "S", deps.Attrs("T", "U")),
		deps.NewFD("S", deps.Attrs("T"), deps.Attrs("U")),
	}
	r43, err := chase.ImpliesRD(db, deg, deps.NewRD("R", deps.Attrs("Y"), deps.Attrs("Z")), chase.Options{})
	must(err)
	check(r43.Verdict == chase.Implied, "Prop 4.3: Σ ⊨ R[Y = Z] (a repeating dependency)")
}

// E7: Theorem 5.1 in the small.
func e7() {
	header("E7", "Theorem 5.1 — k-ary completeness characterization (singleton FDs)")
	var universe []deps.Dependency
	attrs := []string{"A", "B", "C"}
	for _, x := range attrs {
		for _, y := range attrs {
			universe = append(universe, deps.NewFD("R", deps.Attrs(x), deps.Attrs(y)))
		}
	}
	oracle := func(T []deps.Dependency, tau deps.Dependency) (bool, error) {
		var fds []deps.FD
		for _, d := range T {
			fds = append(fds, d.(deps.FD))
		}
		return fd.Implies(fds, tau.(deps.FD)), nil
	}
	ok2, _, err := rules.KaryCompleteExists(universe, oracle, 2)
	must(err)
	ok1, w, err := rules.KaryCompleteExists(universe, oracle, 1)
	must(err)
	check(ok2, "2-ary complete axiomatization exists (Armstrong transitivity)")
	check(!ok1, "no 1-ary complete axiomatization exists")
	if w != nil {
		fmt.Printf("  witness Γ closed under 1-ary implication, Σ ⊨ %v ∉ Γ\n", w.Tau)
	}
}

// E8: Theorem 5.3 — the Sagiv–Walecka EMVD family.
func e8() {
	header("E8", "Theorem 5.3 — Sagiv–Walecka EMVD cycle, Corollary 5.2 conditions")
	f, err := emvd.SagivWalecka(2)
	must(err)
	rep, err := f.CheckConditions(emvd.Options{MaxTuples: 512})
	must(err)
	check(rep.Cond1 == emvd.Implied, "condition (i): Σ ⊨ σ (EMVD chase)")
	check(len(rep.Cond2Violations) == 0, "condition (ii): no single member implies σ")
	check(rep.Cond3Violations == 0,
		fmt.Sprintf("condition (iii): %d (Δ,τ) pairs checked, %d unresolved, 0 violations", rep.Cond3Checked, rep.Cond3Unknown))
	check(rep.Holds(), "⇒ no k-ary complete axiomatization for EMVDs (k=2 instance)")
}

// E9: Theorem 6.1 + Fig 6.1.
func e9(k int) {
	header("E9", fmt.Sprintf("Theorem 6.1 — finite implication, k = %d", k))
	s, err := counterex.NewSection6(k)
	must(err)
	rep, err := s.Verify()
	must(err)
	check(rep.SigmaImpliesGoalFinitely, fmt.Sprintf("Σ_k ⊨fin σ = %v (cardinality cycle)", s.Goal))
	check(rep.GoalNotImpliedUnrestrictedly, "Σ_k ⊭ σ (unrestricted)")
	check(rep.GoalNotInGamma, "σ ∉ Γ")
	for j, e := range rep.ArmstrongExact {
		check(e, fmt.Sprintf("Armstrong database d_%d obeys exactly Γ − δ_%d (%d-sentence universe)", j, j, rep.UniverseSize))
	}
	check(rep.Ok(), fmt.Sprintf("⇒ Γ closed under %d-ary finite implication but not under finite implication", k))
	for j := 0; j <= k; j++ {
		mvdOK, err := s.ViolatesAllNontrivialMVDs(j)
		must(err)
		check(mvdOK, fmt.Sprintf("remark: d_%d obeys no nontrivial MVD (result extends to FDs+INDs+MVDs)", j))
	}
	if k == 3 {
		d, _ := s.ArmstrongDatabase(3)
		fmt.Println("  Fig 6.1 (k = 3, δ = R3[A] ⊆ R0[B] omitted):")
		fmt.Println(indent(d.String()))
	}
}

// E10: Lemma 7.2 via the chase.
func e10(n int) {
	header("E10", fmt.Sprintf("Lemma 7.2 — Σ ⊨ F: A -> C via the chase, n = %d", n))
	s, err := counterex.NewSection7(n)
	must(err)
	res, err := s.Lemma72(chase.Options{Trace: true})
	must(err)
	check(res.Verdict == chase.Implied,
		fmt.Sprintf("chase derives the goal in %d rounds over %d tuples (|Σ| = %d)", res.Rounds, res.Tuples, len(s.Sigma)))
	fmt.Printf("  the derivation (the paper's steps (2)–(14), machine-generated; %d rule applications):\n", len(res.Trace))
	show := res.Trace
	if len(show) > 12 {
		show = show[:12]
	}
	for _, line := range show {
		fmt.Printf("    %s\n", line)
	}
	if len(res.Trace) > len(show) {
		fmt.Printf("    ... (%d more)\n", len(res.Trace)-len(show))
	}
}

// E11/E12: Figs 7.1–7.5 and the Theorem 7.1 verification.
func e11(n int) {
	header("E11", fmt.Sprintf("Lemmas 7.4–7.6 — Figs 7.1–7.3, n = %d", n))
	s, err := counterex.NewSection7(n)
	must(err)
	fig71, err := s.Fig71()
	must(err)
	fmt.Println("  Fig 7.1 (obeys Σ, no nontrivial RD):")
	fmt.Println(indent(fig71.String()))
	fig72, err := s.Fig72()
	must(err)
	ok72, _, err := fig72.SatisfiesAll(s.Sigma)
	must(err)
	check(ok72, "Fig 7.2 obeys Σ; its FDs are exactly φ⁺ (verified in E12)")
	fmt.Println("  Fig 7.2:")
	fmt.Println(indent(fig72.String()))
	fig73 := s.Fig73()
	ok73, _, err := fig73.SatisfiesAll(s.Sigma)
	must(err)
	check(ok73, "Fig 7.3 obeys Σ; its INDs are exactly λ⁺ (verified in E12)")
	fmt.Println("  Fig 7.3:")
	fmt.Println(indent(fig73.String()))
}

func e12(n int) {
	header("E12", fmt.Sprintf("Theorem 7.1 — full mechanized verification, n = %d (covers every k < n)", n))
	s, err := counterex.NewSection7(n)
	must(err)
	rep, err := s.Verify(chase.Options{})
	must(err)
	check(rep.SigmaImpliesGoal, "Σ ⊨ σ = F: A -> C (Lemma 7.2)")
	check(rep.FigsSatisfySigma, "Figs 7.1–7.3 satisfy Σ")
	check(rep.NonMembersKilled,
		fmt.Sprintf("every non-member of φ⁺ ∪ λ⁺ ∪ ω is violated by a figure (%d of %d sentences)", rep.NonMemberCount, rep.UniverseSize))
	for j := range rep.Fig74Separates {
		check(rep.Fig74Separates[j], fmt.Sprintf("Fig 7.4(%d) separates β_%d from λ − {β_%d}", j, j, j))
		check(rep.Fig75Supports[j], fmt.Sprintf("Fig 7.5(%d) satisfies Γ − {β_%d} and violates σ", j, j))
	}
	check(rep.Ok(), "⇒ Γ closed under k-ary implication (k < n) but not under implication")
}

// E13: FD closure vs IND decision.
func e13() {
	header("E13", "Section 3 contrast — linear-time FD closure")
	var sigma []deps.FD
	nAttrs := 200
	for i := 0; i+1 < nAttrs; i++ {
		sigma = append(sigma, deps.NewFD("R", deps.Attrs(fmt.Sprintf("A%d", i)), deps.Attrs(fmt.Sprintf("A%d", i+1))))
	}
	start := time.Now()
	closure := fd.Closure("R", deps.Attrs("A0"), sigma)
	check(len(closure) == nAttrs, fmt.Sprintf("closure of a %d-FD chain computed in %v", len(sigma), time.Since(start).Round(time.Microsecond)))
}

// E14: polynomial special cases.
func e14() {
	header("E14", "Section 3 — polynomial special cases (bounded width, typed)")
	// Width-1 INDs over many relations: the expression space is linear.
	var schemes []*schema.Scheme
	var sigma []deps.IND
	n := 60
	for i := 0; i < n; i++ {
		schemes = append(schemes, schema.MustScheme(fmt.Sprintf("R%d", i), "A"))
	}
	db := schema.MustDatabase(schemes...)
	for i := 0; i+1 < n; i++ {
		sigma = append(sigma, deps.NewIND(fmt.Sprintf("R%d", i), deps.Attrs("A"), fmt.Sprintf("R%d", i+1), deps.Attrs("A")))
	}
	goal := deps.NewIND("R0", deps.Attrs("A"), fmt.Sprintf("R%d", n-1), deps.Attrs("A"))
	start := time.Now()
	res, err := ind.Decide(db, sigma, goal)
	must(err)
	check(res.Implied && res.Stats.Visited <= n,
		fmt.Sprintf("unary IND chain of %d decided with %d states in %v (linear)", n, res.Stats.Visited, time.Since(start).Round(time.Microsecond)))
}

// E15: Armstrong databases for IND sets (Fagin; Fagin–Vardi, cited in §1).
func e15() {
	header("E15", "Armstrong databases for IND sets")
	db := schema.MustDatabase(
		schema.MustScheme("R", "A", "B"),
		schema.MustScheme("S", "C", "D"),
	)
	sigma := []deps.IND{deps.NewIND("R", deps.Attrs("A", "B"), "S", deps.Attrs("C", "D"))}
	universe := enum.INDs(db, enum.Options{MaxWidth: 2})
	arm, err := ind.ArmstrongDatabase(db, sigma, universe)
	must(err)
	exact := true
	for _, cand := range universe {
		implied, err := ind.Implies(db, sigma, cand)
		must(err)
		sat, err := arm.Satisfies(cand)
		must(err)
		if sat != implied {
			exact = false
		}
	}
	check(exact, fmt.Sprintf("database satisfies exactly the consequences of Σ among %d candidate INDs", len(universe)))
}

// E16: the Section 3 closing note — Σ ∧ ¬σ for INDs is in the extended
// Maslov class; FDs fall outside.
func e16() {
	header("E16", "Section 3 closing note — the extended Maslov class")
	db := schema.MustDatabase(
		schema.MustScheme("R", "A", "B"),
		schema.MustScheme("S", "C", "D"),
	)
	sigma := []deps.IND{
		deps.NewIND("R", deps.Attrs("A", "B"), "S", deps.Attrs("C", "D")),
		deps.NewIND("S", deps.Attrs("C"), "R", deps.Attrs("B")),
	}
	goal := deps.NewIND("R", deps.Attrs("A"), "R", deps.Attrs("B"))
	inst, err := fo.InstanceSentence(db, sigma, goal)
	must(err)
	check(inst.InExtendedMaslov(), "Σ ∧ ¬σ (INDs) is in the extended Maslov class ⇒ ⊨ = ⊨fin for INDs")
	fmt.Println(indent(inst.String()))
	fdSent, err := fo.FromFD(db, deps.NewFD("R", deps.Attrs("A"), deps.Attrs("B")), "f_")
	must(err)
	check(!fdSent.InExtendedMaslov(), "an FD clause has width 3 — outside the class (and indeed ⊨ ≠ ⊨fin for FDs+INDs)")
}

// exportFigures writes every figure database as a directory of CSVs.
func exportFigures(dir string, k, n int) error {
	save := func(sub string, db *data.Database) error {
		return data.SaveDir(db, filepath.Join(dir, sub))
	}
	for _, fig := range []struct {
		name string
		inst counterex.Theorem44Instance
	}{{"fig4.1", counterex.Fig41()}, {"fig4.2", counterex.Fig42()}} {
		if err := save(fig.name+"-window", fig.inst.Witness.Window(8)); err != nil {
			return err
		}
	}
	s6, err := counterex.NewSection6(k)
	if err != nil {
		return err
	}
	for j := 0; j <= k; j++ {
		d, err := s6.ArmstrongDatabase(j)
		if err != nil {
			return err
		}
		if err := save(fmt.Sprintf("fig6.1-d%d", j), d); err != nil {
			return err
		}
	}
	s7, err := counterex.NewSection7(n)
	if err != nil {
		return err
	}
	fig71, err := s7.Fig71()
	if err != nil {
		return err
	}
	fig72, err := s7.Fig72()
	if err != nil {
		return err
	}
	if err := save("fig7.1", fig71); err != nil {
		return err
	}
	if err := save("fig7.2", fig72); err != nil {
		return err
	}
	if err := save("fig7.3", s7.Fig73()); err != nil {
		return err
	}
	for j := 0; j < n; j++ {
		f74, err := s7.Fig74(j)
		if err != nil {
			return err
		}
		f75, err := s7.Fig75(j)
		if err != nil {
			return err
		}
		if err := save(fmt.Sprintf("fig7.4-j%d", j), f74); err != nil {
			return err
		}
		if err := save(fmt.Sprintf("fig7.5-j%d", j), f75); err != nil {
			return err
		}
	}
	return nil
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		os.Exit(1)
	}
}

func indent(s string) string {
	return "    " + strings.ReplaceAll(s, "\n", "\n    ")
}
