// Command indfd decides implication queries over sets of functional and
// inclusion dependencies, using the engines of the paper "Inclusion
// Dependencies and Their Interaction with Functional Dependencies"
// (Casanova, Fagin, Papadimitriou, 1982).
//
// Usage:
//
//	indfd [-v] [-budget N] [file.dep]
//
// The input (a file, or stdin when no file is given) declares schemes,
// dependencies and queries:
//
//	schema MGR(NAME, DEPT)
//	schema EMP(NAME, DEPT, SAL)
//	MGR[NAME,DEPT] <= EMP[NAME,DEPT]
//	? MGR[NAME] <= EMP[NAME]      # unrestricted implication
//	?fin EMP: NAME -> SAL         # finite implication
//
// With -v, proofs and counterexamples are printed. The exit status is 0
// when every query was decided, 2 when some verdict was unknown (the
// general FD+IND problem is undecidable and the chase is budgeted), and
// 1 on input errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"indfd/internal/core"
	"indfd/internal/deps"
	"indfd/internal/emvd"
	"indfd/internal/parser"
	"indfd/internal/td"
)

func main() {
	verbose := flag.Bool("v", false, "print proofs and counterexamples")
	explain := flag.Bool("explain", false, "print derivations (implies -v; adds cardinality-cycle explanations)")
	budget := flag.Int("budget", 0, "chase tuple budget for the general engine (0 = default)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	code, err := run(in, os.Stdout, *verbose || *explain, *budget, *explain)
	if err != nil {
		fatal(err)
	}
	os.Exit(code)
}

// run parses the input, answers every query onto w, and returns the
// process exit code.
func run(in io.Reader, w io.Writer, verbose bool, budget int, explain ...bool) (int, error) {
	doExplain := len(explain) > 0 && explain[0]
	file, err := parser.Parse(in)
	if err != nil {
		return 1, err
	}
	if len(file.Queries) == 0 && len(file.TDQueries) == 0 {
		return 1, fmt.Errorf("no queries (add lines starting with '?' or '?fin')")
	}

	// Split Σ: EMVDs go to their own engine; everything else to the core
	// system.
	sys := core.NewSystem(file.DB)
	var emvds []deps.EMVD
	for _, d := range file.Sigma {
		if e, ok := d.(deps.EMVD); ok {
			emvds = append(emvds, e)
			continue
		}
		if err := sys.Add(d); err != nil {
			return 1, err
		}
	}

	exit := 0
	for _, q := range file.TDQueries {
		mode := "⊨"
		if q.Mode == parser.Finite {
			mode = "⊨fin"
		}
		var sigma []td.TD
		for _, t := range file.TDs {
			if t.Rel == q.Goal.Rel {
				sigma = append(sigma, t)
			}
		}
		res, err := td.Implies(file.DB, sigma, q.Goal, td.Options{MaxTuples: budget})
		if err != nil {
			return 1, err
		}
		fmt.Fprintf(w, "%s Σ %s %v  [td chase]\n", verdictMark(res.Verdict.String()), mode, q.Goal)
		if res.Verdict == td.Unknown {
			exit = 2
		}
		if verbose && res.Counterexample != nil {
			fmt.Fprintf(w, "counterexample:\n%s\n", indent(res.Counterexample.String()))
		}
	}
	for _, q := range file.Queries {
		mode := "⊨"
		if q.Mode == parser.Finite {
			mode = "⊨fin"
		}
		if e, ok := q.Goal.(deps.EMVD); ok {
			res, err := emvd.Implies(file.DB, emvds, e, emvd.Options{MaxTuples: budget})
			if err != nil {
				return 1, err
			}
			fmt.Fprintf(w, "%s Σ %s %v  [emvd chase]\n", verdictMark(res.Verdict.String()), mode, q.Goal)
			if res.Verdict == emvd.Unknown {
				exit = 2
			}
			if verbose && res.Counterexample != nil {
				fmt.Fprintf(w, "counterexample:\n%s\n", indent(res.Counterexample.String()))
			}
			continue
		}
		var a core.Answer
		var why string
		if doExplain {
			a, why, err = sys.Explain(q.Goal, core.Options{ChaseMaxTuples: budget}, q.Mode == parser.Finite)
		} else if q.Mode == parser.Finite {
			a, err = sys.ImpliesFinite(q.Goal, core.Options{ChaseMaxTuples: budget})
		} else {
			a, err = sys.Implies(q.Goal, core.Options{ChaseMaxTuples: budget})
		}
		if err != nil {
			return 1, err
		}
		if doExplain && why != "" && a.Proof == "" && a.Counterexample == nil {
			fmt.Fprintf(w, "%s Σ %s %v  [%s]\n%s\n", verdictMark(a.Verdict.String()), mode, q.Goal, a.Engine, indent(why))
			if a.Verdict == core.Unknown {
				exit = 2
			}
			continue
		}
		fmt.Fprintf(w, "%s Σ %s %v  [%s]\n", verdictMark(a.Verdict.String()), mode, q.Goal, a.Engine)
		if a.Verdict == core.Unknown {
			exit = 2
		}
		if verbose {
			if a.Proof != "" {
				fmt.Fprintf(w, "proof:\n%s\n", indent(a.Proof))
			}
			if a.Counterexample != nil {
				fmt.Fprintf(w, "counterexample:\n%s\n", indent(a.Counterexample.String()))
			}
		}
	}
	return exit, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "indfd:", err)
	os.Exit(1)
}

func verdictMark(v string) string {
	switch v {
	case "yes", "implied":
		return "✓"
	case "no", "not implied":
		return "✗"
	default:
		return "?"
	}
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(s, "\n", "\n  ")
}
