// Command indfd decides implication queries over sets of functional and
// inclusion dependencies, using the engines of the paper "Inclusion
// Dependencies and Their Interaction with Functional Dependencies"
// (Casanova, Fagin, Papadimitriou, 1982).
//
// Usage:
//
//	indfd [-v] [-budget N] [-stats] [-trace-json FILE] [-pprof ADDR]
//	      [-memprofile FILE] [file.dep]
//
// The input (a file, or stdin when no file is given) declares schemes,
// dependencies and queries:
//
//	schema MGR(NAME, DEPT)
//	schema EMP(NAME, DEPT, SAL)
//	MGR[NAME,DEPT] <= EMP[NAME,DEPT]
//	? MGR[NAME] <= EMP[NAME]      # unrestricted implication
//	?fin EMP: NAME -> SAL         # finite implication
//
// With -v, proofs and counterexamples are printed. With -stats, each
// query's engine cost (IND expansions, chase rounds and tuples) and a
// full metrics/span report go to stderr; -trace-json FILE writes the
// span tree as JSON, -pprof ADDR serves net/http/pprof, and
// -memprofile FILE writes an end-of-run heap profile. The exit
// status is 0 when every query was decided, 2 when some verdict was
// unknown (the general FD+IND problem is undecidable and the chase is
// budgeted), and 1 on input errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"indfd/internal/cliutil"
	"indfd/internal/core"
	"indfd/internal/deps"
	"indfd/internal/emvd"
	"indfd/internal/obs"
	"indfd/internal/parser"
	"indfd/internal/td"
)

func main() {
	verbose := flag.Bool("v", false, "print proofs and counterexamples")
	explain := flag.Bool("explain", false, "print derivations (implies -v; adds cardinality-cycle explanations)")
	budget := flag.Int("budget", 0, "chase tuple budget for the general engine (0 = default)")
	obsFlags := cliutil.Register(flag.CommandLine)
	flag.Parse()
	if err := obsFlags.StartPprof(); err != nil {
		fatal(err)
	}

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	cfg := config{
		verbose: *verbose || *explain,
		explain: *explain,
		budget:  *budget,
		obs:     obsFlags.Registry(),
		stats:   obsFlags.Stats,
		statsW:  os.Stderr,
	}
	code, err := run(in, os.Stdout, cfg)
	if ferr := obsFlags.Finish(cfg.obs); err == nil {
		err = ferr
	}
	if err != nil {
		fatal(err)
	}
	os.Exit(code)
}

// config carries the command's flags into run.
type config struct {
	verbose bool
	explain bool
	budget  int
	obs     *obs.Registry // nil = instrumentation off
	stats   bool          // print per-query engine costs to statsW
	statsW  io.Writer
}

// run parses the input, answers every query onto w, and returns the
// process exit code.
func run(in io.Reader, w io.Writer, cfg config) (int, error) {
	doExplain := cfg.explain
	verbose := cfg.verbose
	budget := cfg.budget
	if cfg.statsW == nil {
		cfg.statsW = io.Discard
	}
	file, err := parser.Parse(in)
	if err != nil {
		return 1, err
	}
	if len(file.Queries) == 0 && len(file.TDQueries) == 0 {
		return 1, fmt.Errorf("no queries (add lines starting with '?' or '?fin')")
	}

	// Split Σ: EMVDs go to their own engine; everything else to the core
	// system.
	sys := core.NewSystem(file.DB)
	var emvds []deps.EMVD
	for _, d := range file.Sigma {
		if e, ok := d.(deps.EMVD); ok {
			emvds = append(emvds, e)
			continue
		}
		if err := sys.Add(d); err != nil {
			return 1, err
		}
	}

	exit := 0
	for _, q := range file.TDQueries {
		mode := "⊨"
		if q.Mode == parser.Finite {
			mode = "⊨fin"
		}
		var sigma []td.TD
		for _, t := range file.TDs {
			if t.Rel == q.Goal.Rel {
				sigma = append(sigma, t)
			}
		}
		res, err := td.Implies(file.DB, sigma, q.Goal, td.Options{MaxTuples: budget})
		if err != nil {
			return 1, err
		}
		fmt.Fprintf(w, "%s Σ %s %v  [td chase]\n", verdictMark(res.Verdict.String()), mode, q.Goal)
		if res.Verdict == td.Unknown {
			exit = 2
		}
		if verbose && res.Counterexample != nil {
			fmt.Fprintf(w, "counterexample:\n%s\n", indent(res.Counterexample.String()))
		}
	}
	for _, q := range file.Queries {
		mode := "⊨"
		if q.Mode == parser.Finite {
			mode = "⊨fin"
		}
		if e, ok := q.Goal.(deps.EMVD); ok {
			res, err := emvd.Implies(file.DB, emvds, e, emvd.Options{MaxTuples: budget})
			if err != nil {
				return 1, err
			}
			fmt.Fprintf(w, "%s Σ %s %v  [emvd chase]\n", verdictMark(res.Verdict.String()), mode, q.Goal)
			if res.Verdict == emvd.Unknown {
				exit = 2
			}
			if verbose && res.Counterexample != nil {
				fmt.Fprintf(w, "counterexample:\n%s\n", indent(res.Counterexample.String()))
			}
			continue
		}
		opt := core.Options{ChaseMaxTuples: budget, Obs: cfg.obs}
		var a core.Answer
		var why string
		if doExplain {
			a, why, err = sys.Explain(q.Goal, opt, q.Mode == parser.Finite)
		} else if q.Mode == parser.Finite {
			a, err = sys.ImpliesFinite(q.Goal, opt)
		} else {
			a, err = sys.Implies(q.Goal, opt)
		}
		if err != nil {
			return 1, err
		}
		if cfg.stats {
			printQueryStats(cfg.statsW, q.Goal, a)
		}
		if doExplain && why != "" && a.Proof == "" && a.Counterexample == nil {
			fmt.Fprintf(w, "%s Σ %s %v  [%s]\n%s\n", verdictMark(a.Verdict.String()), mode, q.Goal, a.Engine, indent(why))
			if a.Verdict == core.Unknown {
				exit = 2
			}
			continue
		}
		fmt.Fprintf(w, "%s Σ %s %v  [%s]\n", verdictMark(a.Verdict.String()), mode, q.Goal, a.Engine)
		if a.Verdict == core.Unknown {
			exit = 2
		}
		if verbose {
			if a.Proof != "" {
				fmt.Fprintf(w, "proof:\n%s\n", indent(a.Proof))
			}
			if a.Counterexample != nil {
				fmt.Fprintf(w, "counterexample:\n%s\n", indent(a.Counterexample.String()))
			}
		}
	}
	return exit, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "indfd:", err)
	os.Exit(1)
}

// printQueryStats writes one line of per-query engine cost: which engine
// answered and what it spent (IND graph work, chase rounds and tuples).
func printQueryStats(w io.Writer, goal deps.Dependency, a core.Answer) {
	fmt.Fprintf(w, "stats: %v engine=%s", goal, a.Engine)
	if st := a.INDStats; st != nil {
		fmt.Fprintf(w, " ind_expanded=%d ind_generated=%d ind_visited=%d ind_frontier_peak=%d",
			st.Expanded, st.Generated, st.Visited, st.FrontierPeak)
	}
	if a.ChaseRounds > 0 || a.ChaseTuples > 0 {
		fmt.Fprintf(w, " chase_rounds=%d chase_tuples=%d", a.ChaseRounds, a.ChaseTuples)
	}
	fmt.Fprintln(w)
}

func verdictMark(v string) string {
	switch v {
	case "yes", "implied":
		return "✓"
	case "no", "not implied":
		return "✗"
	default:
		return "?"
	}
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(s, "\n", "\n  ")
}
