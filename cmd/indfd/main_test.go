package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"indfd/internal/obs"
)

func runFile(t *testing.T, path string, verbose bool, budget int) (string, int) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out bytes.Buffer
	code, err := run(f, &out, config{verbose: verbose, budget: budget})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return out.String(), code
}

func TestRunManagerFile(t *testing.T) {
	out, code := runFile(t, "testdata/manager.dep", true, 0)
	wantLines := []string{
		"✓ Σ ⊨ MGR[NAME] <= EMP[NAME]",
		"✓ Σ ⊨ MGR: NAME -> DEPT",
		"✗ Σ ⊨ EMP[NAME] <= MGR[NAME]",
		"✓ Σ ⊨fin R[B] <= R[A]", // Theorem 4.4: finite yes...
		"✗ Σ ⊨ R[B] <= R[A]",    // ...unrestricted no.
	}
	for _, want := range wantLines {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "proof:") || !strings.Contains(out, "counterexample:") {
		t.Errorf("verbose output missing proof/counterexample:\n%s", out)
	}
	if code != 0 {
		t.Errorf("exit code = %d", code)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := run(strings.NewReader("schema R(A)\n"), &bytes.Buffer{}, config{}); err == nil {
		t.Errorf("no queries should be an error")
	}
	if _, err := run(strings.NewReader("nonsense\n"), &bytes.Buffer{}, config{}); err == nil {
		t.Errorf("parse failure should be an error")
	}
}

func TestRunEMVDQuery(t *testing.T) {
	in := `
schema R(A1, A2, A3, B)
R: A1 ->> A2 | B
R: A2 ->> A3 | B
R: A3 ->> A1 | B
? R: A1 ->> A3 | B
`
	var out bytes.Buffer
	code, err := run(strings.NewReader(in), &out, config{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 || !strings.Contains(out.String(), "✓ Σ ⊨ R: A1 ->> A3 | B") {
		t.Errorf("EMVD query failed (code %d):\n%s", code, out.String())
	}
}

func TestRunUnknownExitCode(t *testing.T) {
	// A general instance whose chase diverges yields exit code 2.
	in := `
schema R(A, B, C)
R[A,B] <= R[B,C]
R: A -> B
? R[C] <= R[A]
`
	var out bytes.Buffer
	code, err := run(strings.NewReader(in), &out, config{budget: 64})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 2 || !strings.Contains(out.String(), "?") {
		t.Errorf("expected unknown verdict and exit 2, got %d:\n%s", code, out.String())
	}
}

func TestRunTDQuery(t *testing.T) {
	// The EMVD-shaped TD chain from the Sagiv–Walecka family, in TD row
	// syntax.
	in := `
schema R(A1, A2, A3, B)
R :: (x, y1, u1, b1) (x, y2, u2, b2) / (x, y1, u3, b2)
R :: (v1, y, u1, b1) (v2, y, u2, b2) / (v3, y, u1, b2)
R :: (v1, y1, u, b1) (v2, y2, u, b2) / (v1, y3, u, b2)

? R :: (x, y1, u1, b1) (x, y2, u2, b2) / (x, y3, u1, b2)
`
	var out bytes.Buffer
	code, err := run(strings.NewReader(in), &out, config{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 || !strings.Contains(out.String(), "✓ Σ ⊨ R: ") {
		t.Errorf("TD query failed (code %d):\n%s", code, out.String())
	}
}

func TestRunExplain(t *testing.T) {
	in := `
schema R(A, B)
R: A -> B
R[A] <= R[B]
?fin R[B] <= R[A]
`
	var out bytes.Buffer
	code, err := run(strings.NewReader(in), &out, config{verbose: true, explain: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 || !strings.Contains(out.String(), "cardinality cycle") {
		t.Errorf("explanation missing (code %d):\n%s", code, out.String())
	}
}

func TestRunStats(t *testing.T) {
	f, err := os.Open("testdata/manager.dep")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	reg := obs.New()
	var out, stats bytes.Buffer
	code, err := run(f, &out, config{obs: reg, stats: true, statsW: &stats})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Errorf("exit code = %d", code)
	}
	s := stats.String()
	for _, want := range []string{
		"stats: MGR[NAME] <= EMP[NAME] engine=ind",
		"ind_expanded=",
		"ind_frontier_peak=",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("stats output missing %q:\n%s", want, s)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["ind.expanded"] == 0 {
		t.Errorf("registry missing ind.expanded: %v", snap.Counters)
	}
	if len(snap.Spans) == 0 || snap.Spans[0].Name != "core.query" {
		t.Errorf("registry missing core.query spans: %+v", snap.Spans)
	}
	// The snapshot the -trace-json flag would write round-trips.
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Spans) != len(snap.Spans) {
		t.Errorf("trace JSON round-trip lost spans: %d != %d", len(back.Spans), len(snap.Spans))
	}
}
