//go:build race

package indfd

// raceDetectorEnabled reports whether this test binary was built with
// -race. sync.Pool deliberately drops a quarter of Puts at random under
// the race detector, and race instrumentation itself allocates, so the
// exact-zero pin on the warm pooled path only holds without -race.
const raceDetectorEnabled = true
